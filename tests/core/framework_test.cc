#include "core/framework.h"

#include <gtest/gtest.h>

#include "circuit/benchmarks.h"
#include "common/units.h"
#include "graph/topologies.h"
#include "sim/ideal_sim.h"

namespace qzz::core {
namespace {

dev::Device
device23(uint64_t seed = 3)
{
    Rng rng(seed);
    return dev::Device(graph::gridTopology(2, 3), dev::DeviceParams{},
                       rng);
}

TEST(FrameworkTest, PolicyNames)
{
    EXPECT_EQ(schedPolicyName(SchedPolicy::Par), "ParSched");
    EXPECT_EQ(schedPolicyName(SchedPolicy::Zzx), "ZZXSched");
    EXPECT_EQ(schedPolicyName(SchedPolicy::ZzxWeighted), "ZzxWeighted");
}

TEST(FrameworkTest, PolicyNameRoundTrips)
{
    for (SchedPolicy p :
         {SchedPolicy::Par, SchedPolicy::Zzx, SchedPolicy::ZzxWeighted,
          SchedPolicy::Exact, SchedPolicy::CycleAware}) {
        auto parsed = schedPolicyFromName(schedPolicyName(p));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, p);
    }
    // Enum spellings and case-insensitivity for CLI use.
    EXPECT_EQ(schedPolicyFromName("par"), SchedPolicy::Par);
    EXPECT_EQ(schedPolicyFromName("zzx"), SchedPolicy::Zzx);
    EXPECT_EQ(schedPolicyFromName("zzxsched"), SchedPolicy::Zzx);
    EXPECT_EQ(schedPolicyFromName("zzxweighted"),
              SchedPolicy::ZzxWeighted);
    EXPECT_EQ(schedPolicyFromName("weighted"), SchedPolicy::ZzxWeighted);
    EXPECT_EQ(schedPolicyFromName("exact"), SchedPolicy::Exact);
    EXPECT_EQ(schedPolicyFromName("exactsched"), SchedPolicy::Exact);
    EXPECT_EQ(schedPolicyFromName("cycle"), SchedPolicy::CycleAware);
    EXPECT_EQ(schedPolicyFromName("cycleaware"),
              SchedPolicy::CycleAware);
    EXPECT_FALSE(schedPolicyFromName("").has_value());
    EXPECT_FALSE(schedPolicyFromName("asap").has_value());
}

TEST(FrameworkTest, PolicyNameListingCoversEveryPolicy)
{
    // The canonical listing drives CLI validation messages and the
    // compile_server --help text: every enum value must appear, in
    // enum order, and every listed name must parse back to itself.
    const std::vector<std::string> &names = schedPolicyNames();
    ASSERT_EQ(names.size(), 5u);
    EXPECT_EQ(names[0], "ParSched");
    EXPECT_EQ(names[1], "ZZXSched");
    EXPECT_EQ(names[2], "ZzxWeighted");
    EXPECT_EQ(names[3], "ExactSched");
    EXPECT_EQ(names[4], "CycleAware");
    for (size_t i = 0; i < names.size(); ++i) {
        auto parsed = schedPolicyFromName(names[i]);
        ASSERT_TRUE(parsed.has_value()) << names[i];
        EXPECT_EQ(size_t(*parsed), i) << names[i];
    }
}

TEST(FrameworkTest, CompiledProgramIsComplete)
{
    auto dev = device23();
    Rng rng(7);
    ckt::QuantumCircuit c = ckt::qaoaMaxCut(6, 1, rng);
    CompileOptions opt;
    opt.pulse = PulseMethod::Gaussian;
    opt.sched = SchedPolicy::Zzx;
    CompiledProgram prog = compileForDevice(c, dev, opt);

    EXPECT_TRUE(prog.native.isNative());
    EXPECT_TRUE(ckt::respectsConnectivity(prog.native, dev.graph()));
    ASSERT_NE(prog.library, nullptr);
    EXPECT_EQ(prog.library->name(), "Gaussian");
    EXPECT_EQ(prog.schedule.circuitGateCount(),
              int(prog.native.size()));
}

TEST(FrameworkTest, BothPoliciesAgreeOnSemantics)
{
    auto dev = device23();
    Rng rng(9);
    ckt::QuantumCircuit c = ckt::hiddenShift(6, rng);
    CompileOptions par;
    par.pulse = PulseMethod::Gaussian;
    par.sched = SchedPolicy::Par;
    CompileOptions zzx = par;
    zzx.sched = SchedPolicy::Zzx;
    auto a = sim::runIdealSchedule(
        compileForDevice(c, dev, par).schedule);
    auto b = sim::runIdealSchedule(
        compileForDevice(c, dev, zzx).schedule);
    EXPECT_NEAR(a.fidelity(b), 1.0, 1e-9);
}

TEST(FrameworkTest, DcgLibraryStretchesDurations)
{
    // DCG identity is 40 ns and SX 120 ns; schedules must reflect it.
    auto dev = device23();
    ckt::QuantumCircuit c(6);
    c.sx(0);
    CompileOptions opt;
    opt.pulse = PulseMethod::DCG;
    opt.sched = SchedPolicy::Zzx;
    CompiledProgram prog = compileForDevice(c, dev, opt);
    ASSERT_EQ(prog.schedule.physicalLayerCount(), 1);
    // Layer duration = max(SX 120 ns, supplemented identity 40 ns).
    EXPECT_DOUBLE_EQ(prog.schedule.executionTime(), 120.0);
}

TEST(FrameworkTest, EmptyCircuitYieldsEmptySchedule)
{
    auto dev = device23();
    ckt::QuantumCircuit c(6, "empty");
    CompileOptions opt;
    opt.pulse = PulseMethod::Gaussian;
    CompiledProgram prog = compileForDevice(c, dev, opt);
    EXPECT_EQ(prog.schedule.physicalLayerCount(), 0);
    EXPECT_DOUBLE_EQ(prog.schedule.executionTime(), 0.0);
}

TEST(FrameworkTest, RoutingHandlesNonAdjacentGates)
{
    auto dev = device23();
    ckt::QuantumCircuit c(6);
    c.cx(0, 5); // distance 3 on the 2x3 grid
    CompileOptions opt;
    opt.pulse = PulseMethod::Gaussian;
    CompiledProgram prog = compileForDevice(c, dev, opt);
    EXPECT_TRUE(ckt::respectsConnectivity(prog.native, dev.graph()));
    EXPECT_GT(prog.native.twoQubitCount(), 1); // SWAPs inserted
}

} // namespace
} // namespace qzz::core
