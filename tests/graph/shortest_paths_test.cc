#include "graph/shortest_paths.h"

#include <gtest/gtest.h>

#include "graph/topologies.h"

namespace qzz::graph {
namespace {

TEST(ShortestPathTest, StraightLine)
{
    Topology t = lineTopology(5);
    auto p = shortestPath(t.g, 0, 4);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->length(), 4);
    EXPECT_EQ(p->vertices.front(), 0);
    EXPECT_EQ(p->vertices.back(), 4);
}

TEST(ShortestPathTest, GridDistance)
{
    Topology t = gridTopology(3, 4);
    auto p = shortestPath(t.g, 0, 11); // (0,0) -> (2,3)
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->length(), 5); // Manhattan distance
}

TEST(ShortestPathTest, PathEdgesMatchVertices)
{
    Topology t = gridTopology(3, 3);
    auto p = shortestPath(t.g, 0, 8);
    ASSERT_TRUE(p.has_value());
    ASSERT_EQ(p->edges.size() + 1, p->vertices.size());
    for (size_t i = 0; i < p->edges.size(); ++i) {
        const Edge &e = t.g.edge(p->edges[i]);
        const int a = p->vertices[i], b = p->vertices[i + 1];
        EXPECT_TRUE((e.u == a && e.v == b) || (e.u == b && e.v == a));
    }
}

TEST(ShortestPathTest, BlockedEdgeForcesDetour)
{
    Topology t = ringTopology(6);
    std::vector<char> blocked(size_t(t.g.numEdges()), 0);
    blocked[t.g.findEdge(0, 1)] = 1;
    auto p = shortestPath(t.g, 0, 1, blocked);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->length(), 5); // all the way around
}

TEST(ShortestPathTest, BlockedVertexForcesDetour)
{
    Topology t = gridTopology(3, 3);
    std::vector<char> bv(size_t(t.g.numVertices()), 0);
    bv[4] = 1; // center
    auto p = shortestPath(t.g, 3, 5, {}, bv);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->length(), 4);
}

TEST(ShortestPathTest, DisconnectedReturnsNull)
{
    Graph g(4);
    g.addEdge(0, 1);
    g.addEdge(2, 3);
    EXPECT_FALSE(shortestPath(g, 0, 3).has_value());
}

TEST(ShortestPathTest, SourceEqualsDestination)
{
    Topology t = lineTopology(3);
    auto p = shortestPath(t.g, 1, 1);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->length(), 0);
}

TEST(YenTest, FirstPathIsShortest)
{
    Topology t = gridTopology(3, 3);
    auto paths = yenKShortestPaths(t.g, 0, 8, 3);
    ASSERT_GE(paths.size(), 1u);
    EXPECT_EQ(paths[0].length(), 4);
}

TEST(YenTest, PathsSortedAndDistinct)
{
    Topology t = gridTopology(3, 3);
    auto paths = yenKShortestPaths(t.g, 0, 8, 6);
    ASSERT_GE(paths.size(), 2u);
    for (size_t i = 1; i < paths.size(); ++i) {
        EXPECT_GE(paths[i].length(), paths[i - 1].length());
        EXPECT_NE(paths[i].edges, paths[i - 1].edges);
    }
}

TEST(YenTest, CountsAllSimplePathsOnRing)
{
    // A ring has exactly two simple paths between any two vertices.
    Topology t = ringTopology(6);
    auto paths = yenKShortestPaths(t.g, 0, 3, 5);
    EXPECT_EQ(paths.size(), 2u);
    EXPECT_EQ(paths[0].length(), 3);
    EXPECT_EQ(paths[1].length(), 3);
}

TEST(YenTest, PathsAreLoopless)
{
    Topology t = gridTopology(3, 4);
    auto paths = yenKShortestPaths(t.g, 0, 11, 8);
    for (const Path &p : paths) {
        std::vector<int> v = p.vertices;
        std::sort(v.begin(), v.end());
        EXPECT_TRUE(std::adjacent_find(v.begin(), v.end()) == v.end())
            << "path revisits a vertex";
    }
}

TEST(YenTest, MultigraphParallelEdgesAreDistinctPaths)
{
    Graph g(2);
    g.addEdge(0, 1);
    g.addEdge(0, 1);
    auto paths = yenKShortestPaths(g, 0, 1, 4);
    EXPECT_EQ(paths.size(), 2u);
    EXPECT_EQ(paths[0].length(), 1);
    EXPECT_EQ(paths[1].length(), 1);
    EXPECT_NE(paths[0].edges[0], paths[1].edges[0]);
}

TEST(YenTest, RespectsGlobalBlockedEdges)
{
    Topology t = ringTopology(5);
    std::vector<char> blocked(size_t(t.g.numEdges()), 0);
    blocked[t.g.findEdge(0, 1)] = 1;
    auto paths = yenKShortestPaths(t.g, 0, 1, 4, blocked);
    ASSERT_EQ(paths.size(), 1u);
    EXPECT_EQ(paths[0].length(), 4);
}

} // namespace
} // namespace qzz::graph
