#include "graph/planar.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/topologies.h"

namespace qzz::graph {
namespace {

TEST(PlanarTest, GridFaceCountSatisfiesEuler)
{
    for (auto [r, c] : {std::pair{2, 2}, {3, 3}, {3, 4}, {5, 3}}) {
        Topology t = gridTopology(r, c);
        PlanarEmbedding emb = t.embedding();
        const int n = t.g.numVertices();
        const int m = t.g.numEdges();
        EXPECT_EQ(n - m + emb.numFaces(), 2)
            << "grid " << r << "x" << c;
        // (r-1)(c-1) unit squares + outer face.
        EXPECT_EQ(emb.numFaces(), (r - 1) * (c - 1) + 1);
    }
}

TEST(PlanarTest, GridInnerFacesAreSquares)
{
    Topology t = gridTopology(3, 4);
    PlanarEmbedding emb = t.embedding();
    const int outer = emb.longestFace();
    for (int f = 0; f < emb.numFaces(); ++f) {
        if (f == outer)
            continue;
        EXPECT_EQ(emb.faceEdges(f).size(), 4u);
    }
    // Outer boundary of a 3x4 grid has 2*(2+3) = 10 edges.
    EXPECT_EQ(emb.faceEdges(outer).size(), 10u);
}

TEST(PlanarTest, EveryEdgeBordersTwoFaceSlots)
{
    Topology t = gridTopology(3, 3);
    PlanarEmbedding emb = t.embedding();
    std::vector<int> incidence(size_t(t.g.numEdges()), 0);
    for (int f = 0; f < emb.numFaces(); ++f)
        for (int e : emb.faceEdges(f))
            ++incidence[e];
    for (int count : incidence)
        EXPECT_EQ(count, 2);
}

TEST(PlanarTest, RingHasTwoFaces)
{
    Topology t = ringTopology(6);
    PlanarEmbedding emb = t.embedding();
    EXPECT_EQ(emb.numFaces(), 2);
    EXPECT_EQ(emb.faceEdges(0).size(), 6u);
    EXPECT_EQ(emb.faceEdges(1).size(), 6u);
}

TEST(PlanarTest, LineFacesAreOneWithDoubledEdges)
{
    // A tree has a single face walking each edge twice.
    Topology t = lineTopology(5);
    PlanarEmbedding emb = t.embedding();
    EXPECT_EQ(emb.numFaces(), 1);
    EXPECT_EQ(emb.faceEdges(0).size(), 2u * 4u);
}

TEST(PlanarTest, TriangulatedGridFaces)
{
    Topology t = triangulatedGridTopology(2, 2);
    PlanarEmbedding emb = t.embedding();
    // 4 vertices, 5 edges -> 3 faces (2 triangles + outer).
    EXPECT_EQ(emb.numFaces(), 3);
    std::vector<size_t> sizes;
    for (int f = 0; f < emb.numFaces(); ++f)
        sizes.push_back(emb.faceEdges(f).size());
    std::sort(sizes.begin(), sizes.end());
    EXPECT_EQ(sizes, (std::vector<size_t>{3, 3, 4}));
}

TEST(DualTest, DualDegreesEqualFaceSizes)
{
    Topology t = gridTopology(3, 4);
    PlanarEmbedding emb = t.embedding();
    DualGraph dual = buildDual(emb);
    EXPECT_EQ(dual.g.numVertices(), emb.numFaces());
    EXPECT_EQ(dual.g.numEdges(), t.g.numEdges());
    for (int f = 0; f < emb.numFaces(); ++f)
        EXPECT_EQ(dual.g.degree(f), int(emb.faceEdges(f).size()));
}

TEST(DualTest, GridDualIsAllEvenDegrees)
{
    // Bipartite planar graph -> all faces have even length.
    Topology t = gridTopology(3, 4);
    DualGraph dual = buildDual(t.embedding());
    EXPECT_TRUE(dual.g.oddDegreeVertices().empty());
}

TEST(DualTest, TriangulatedGridDualHasOddVertices)
{
    Topology t = triangulatedGridTopology(2, 2);
    DualGraph dual = buildDual(t.embedding());
    // The two triangles are odd-degree dual vertices.
    EXPECT_EQ(dual.g.oddDegreeVertices().size(), 2u);
}

TEST(DualTest, TreeDualIsSingleVertexWithLoops)
{
    Topology t = lineTopology(4);
    DualGraph dual = buildDual(t.embedding());
    EXPECT_EQ(dual.g.numVertices(), 1);
    EXPECT_EQ(dual.g.numEdges(), 3);
    for (const Edge &e : dual.g.edges())
        EXPECT_TRUE(e.isSelfLoop());
}

TEST(DualTest, EdgeIdsMirrorPrimal)
{
    Topology t = gridTopology(2, 3);
    PlanarEmbedding emb = t.embedding();
    DualGraph dual = buildDual(emb);
    for (int e = 0; e < t.g.numEdges(); ++e) {
        auto [f1, f2] = emb.facesOfEdge(e);
        const Edge &de = dual.g.edge(e);
        EXPECT_TRUE((de.u == f1 && de.v == f2) ||
                    (de.u == f2 && de.v == f1));
    }
}

} // namespace
} // namespace qzz::graph
