#include "graph/topologies.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace qzz::graph {
namespace {

TEST(TopologiesTest, GridCounts)
{
    Topology t = gridTopology(3, 4);
    EXPECT_EQ(t.g.numVertices(), 12);
    // 3 rows x 3 horizontal + 4 cols x 2 vertical = 9 + 8 = 17.
    EXPECT_EQ(t.g.numEdges(), 17);
    EXPECT_EQ(t.name, "grid-3x4");
}

TEST(TopologiesTest, GridAdjacency)
{
    Topology t = gridTopology(3, 4);
    // Vertex 5 = (1,1): neighbors 1, 4, 6, 9.
    EXPECT_NE(t.g.findEdge(5, 1), -1);
    EXPECT_NE(t.g.findEdge(5, 4), -1);
    EXPECT_NE(t.g.findEdge(5, 6), -1);
    EXPECT_NE(t.g.findEdge(5, 9), -1);
    EXPECT_EQ(t.g.findEdge(5, 10), -1); // diagonal absent
    EXPECT_EQ(t.g.degree(0), 2);
    EXPECT_EQ(t.g.degree(5), 4);
}

TEST(TopologiesTest, GridIsBipartite)
{
    for (auto [r, c] : {std::pair{2, 2}, {2, 3}, {3, 3}, {3, 4}}) {
        Topology t = gridTopology(r, c);
        EXPECT_TRUE(t.g.twoColor().has_value());
    }
}

TEST(TopologiesTest, LineAndRing)
{
    Topology line = lineTopology(7);
    EXPECT_EQ(line.g.numEdges(), 6);
    Topology ring = ringTopology(7);
    EXPECT_EQ(ring.g.numEdges(), 7);
    for (int v = 0; v < 7; ++v)
        EXPECT_EQ(ring.g.degree(v), 2);
}

TEST(TopologiesTest, TriangulatedGridNotBipartite)
{
    Topology t = triangulatedGridTopology(2, 3);
    EXPECT_FALSE(t.g.twoColor().has_value());
    // grid edges (7) + diagonals (2).
    EXPECT_EQ(t.g.numEdges(), 9);
}

TEST(TopologiesTest, CustomTopologyValidation)
{
    auto t = customTopology("tiny", 3, {{0, 1}, {1, 2}},
                            {{0, 0}, {1, 0}, {2, 0}});
    EXPECT_EQ(t.g.numEdges(), 2);
    EXPECT_THROW(customTopology("bad", 3, {}, {{0, 0}}), UserError);
}

TEST(TopologiesTest, EmbeddingRotationsMatchDegrees)
{
    Topology t = triangulatedGridTopology(3, 3);
    PlanarEmbedding emb = t.embedding();
    // Smoke-check Euler for the triangulated grid too.
    EXPECT_EQ(t.g.numVertices() - t.g.numEdges() + emb.numFaces(), 2);
}

} // namespace
} // namespace qzz::graph
