#include "graph/graph.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"

namespace qzz::graph {
namespace {

Graph
triangle()
{
    Graph g(3);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 0);
    return g;
}

TEST(GraphTest, EdgeIdsAreInsertionOrder)
{
    Graph g(3);
    EXPECT_EQ(g.addEdge(0, 1), 0);
    EXPECT_EQ(g.addEdge(1, 2), 1);
    EXPECT_EQ(g.numEdges(), 2);
    EXPECT_EQ(g.edge(0).u, 0);
    EXPECT_EQ(g.edge(1).other(1), 2);
}

TEST(GraphTest, SelfLoopCountsTwiceInDegree)
{
    Graph g(2);
    g.addEdge(0, 0);
    g.addEdge(0, 1);
    EXPECT_EQ(g.degree(0), 3);
    EXPECT_EQ(g.degree(1), 1);
}

TEST(GraphTest, OddDegreeVertices)
{
    Graph g(4); // path 0-1-2-3
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 3);
    auto odd = g.oddDegreeVertices();
    EXPECT_EQ(odd, (std::vector<int>{0, 3}));
}

TEST(GraphTest, FindEdge)
{
    Graph g = triangle();
    EXPECT_EQ(g.findEdge(0, 1), 0);
    EXPECT_EQ(g.findEdge(2, 1), 1);
    Graph g2(4);
    g2.addEdge(0, 1);
    EXPECT_EQ(g2.findEdge(2, 3), -1);
}

TEST(GraphTest, ParallelEdgesSupported)
{
    Graph g(2);
    g.addEdge(0, 1);
    g.addEdge(0, 1);
    EXPECT_EQ(g.numEdges(), 2);
    EXPECT_EQ(g.degree(0), 2);
}

TEST(GraphTest, ComponentsOfEdgeSubset)
{
    Graph g(5);
    g.addEdge(0, 1); // 0
    g.addEdge(1, 2); // 1
    g.addEdge(3, 4); // 2
    std::vector<char> subset{1, 0, 1};
    auto comp = g.componentsOfEdgeSubset(subset);
    EXPECT_EQ(comp[0], comp[1]);
    EXPECT_NE(comp[1], comp[2]);
    EXPECT_EQ(comp[3], comp[4]);
    auto sizes = Graph::componentSizes(comp);
    std::sort(sizes.begin(), sizes.end());
    EXPECT_EQ(sizes, (std::vector<int>{1, 2, 2}));
}

TEST(GraphTest, TwoColorBipartite)
{
    Graph g(4); // 4-cycle
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 3);
    g.addEdge(3, 0);
    auto colors = g.twoColor();
    ASSERT_TRUE(colors.has_value());
    for (const Edge &e : g.edges())
        EXPECT_NE((*colors)[e.u], (*colors)[e.v]);
}

TEST(GraphTest, TwoColorOddCycleFails)
{
    EXPECT_FALSE(triangle().twoColor().has_value());
}

TEST(GraphTest, ContractionMakesTriangleColorable)
{
    Graph g = triangle();
    // Contracting one edge of the triangle leaves a 2-path quotient.
    std::vector<char> contracted{1, 0, 0};
    auto colors = g.twoColorAfterContraction(contracted);
    ASSERT_TRUE(colors.has_value());
    EXPECT_EQ((*colors)[0], (*colors)[1]); // merged endpoints
    EXPECT_NE((*colors)[0], (*colors)[2]);
}

TEST(GraphTest, ContractionConflictDetected)
{
    // A 4-cycle with one edge contracted leaves an odd quotient cycle.
    Graph g(4);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 3);
    g.addEdge(3, 0);
    std::vector<char> contracted{1, 0, 0, 0};
    EXPECT_FALSE(g.twoColorAfterContraction(contracted).has_value());
}

TEST(GraphTest, BfsDistances)
{
    Graph g(5); // path
    for (int v = 0; v + 1 < 5; ++v)
        g.addEdge(v, v + 1);
    auto d = g.bfsDistances(0);
    EXPECT_EQ(d[4], 4);
    EXPECT_EQ(d[0], 0);
    auto all = g.allPairsDistances();
    EXPECT_EQ(all[1][3], 2);
}

TEST(GraphTest, BfsUnreachable)
{
    Graph g(3);
    g.addEdge(0, 1);
    auto d = g.bfsDistances(0);
    EXPECT_EQ(d[2], -1);
}

TEST(GraphTest, AddEdgeValidation)
{
    Graph g(2);
    EXPECT_THROW(g.addEdge(0, 5), UserError);
    EXPECT_THROW(g.addEdge(-1, 0), UserError);
}

} // namespace
} // namespace qzz::graph
