#include "graph/matching.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace qzz::graph {
namespace {

double
bruteForceBest(int n, const std::function<double(int, int)> &w)
{
    // Exhaustive recursion over perfect matchings.
    std::vector<int> partner(size_t(n), -1);
    std::function<double()> rec = [&]() {
        int i = -1;
        for (int v = 0; v < n; ++v)
            if (partner[v] == -1) {
                i = v;
                break;
            }
        if (i < 0)
            return 0.0;
        double best = -1e18;
        for (int j = i + 1; j < n; ++j) {
            if (partner[j] != -1)
                continue;
            partner[i] = j;
            partner[j] = i;
            best = std::max(best, w(i, j) + rec());
            partner[i] = -1;
            partner[j] = -1;
        }
        return best;
    };
    return rec();
}

TEST(MatchingTest, EmptyInput)
{
    auto res = maxWeightPerfectMatching(0, [](int, int) { return 1.0; });
    EXPECT_TRUE(res.pairs.empty());
    EXPECT_EQ(res.weight, 0.0);
}

TEST(MatchingTest, SinglePair)
{
    auto res =
        maxWeightPerfectMatching(2, [](int, int) { return 3.5; });
    ASSERT_EQ(res.pairs.size(), 1u);
    EXPECT_EQ(res.pairs[0], std::make_pair(0, 1));
    EXPECT_DOUBLE_EQ(res.weight, 3.5);
}

TEST(MatchingTest, PicksHeavyPairing)
{
    // Weights force {0,3},{1,2}.
    auto w = [](int i, int j) {
        if ((i == 0 && j == 3) || (i == 1 && j == 2))
            return 10.0;
        return 1.0;
    };
    auto res = maxWeightPerfectMatching(4, w);
    EXPECT_DOUBLE_EQ(res.weight, 20.0);
    EXPECT_EQ(res.pairs[0], std::make_pair(0, 3));
    EXPECT_EQ(res.pairs[1], std::make_pair(1, 2));
}

TEST(MatchingTest, OddCountRejected)
{
    EXPECT_THROW(
        maxWeightPerfectMatching(3, [](int, int) { return 1.0; }),
        UserError);
}

TEST(MatchingTest, MatchesBruteForceOnRandomInstances)
{
    Rng rng(2022);
    for (int trial = 0; trial < 20; ++trial) {
        const int n = 2 * rng.uniformInt(1, 4); // up to 8 vertices
        std::vector<std::vector<double>> w(
            size_t(n), std::vector<double>(size_t(n), 0.0));
        for (int i = 0; i < n; ++i)
            for (int j = i + 1; j < n; ++j)
                w[i][j] = w[j][i] = rng.uniform(0.0, 10.0);
        auto wf = [&](int i, int j) { return w[i][j]; };
        auto res = maxWeightPerfectMatching(n, wf);
        EXPECT_TRUE(res.exact);
        EXPECT_NEAR(res.weight, bruteForceBest(n, wf), 1e-9)
            << "n=" << n << " trial=" << trial;
        // Pairs must partition the vertex set.
        std::vector<int> covered(size_t(n), 0);
        for (auto [i, j] : res.pairs) {
            ++covered[i];
            ++covered[j];
        }
        for (int c : covered)
            EXPECT_EQ(c, 1);
    }
}

TEST(MatchingTest, LargeInstanceUsesHeuristic)
{
    const int n = kExactMatchingLimit + 2;
    auto w = [](int i, int j) { return double((i + j) % 7); };
    auto res = maxWeightPerfectMatching(n, w);
    EXPECT_FALSE(res.exact);
    EXPECT_EQ(res.pairs.size(), size_t(n) / 2);
    std::vector<int> covered(size_t(n), 0);
    for (auto [i, j] : res.pairs) {
        ++covered[i];
        ++covered[j];
    }
    for (int c : covered)
        EXPECT_EQ(c, 1);
}

TEST(MatchingTest, HeuristicIsTwoOptStable)
{
    // On a metric-ish instance the heuristic should beat naive
    // sequential pairing.
    const int n = 24;
    auto w = [](int i, int j) {
        return 100.0 - std::abs(double(i - j));
    };
    auto res = maxWeightPerfectMatching(n, w);
    // Optimal pairs adjacent indices: weight = 12 * 99.
    EXPECT_GE(res.weight, 12.0 * 99.0 - 1e-9);
}

} // namespace
} // namespace qzz::graph
