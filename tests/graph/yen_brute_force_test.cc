/**
 * @file
 * Verifies Yen's algorithm against exhaustive simple-path enumeration
 * on randomized small multigraphs.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "graph/shortest_paths.h"

namespace qzz::graph {
namespace {

/** Enumerate every loopless path src -> dst (edge-id sequences). */
void
allSimplePaths(const Graph &g, int v, int dst,
               std::vector<char> &visited, std::vector<int> &edges,
               std::vector<std::vector<int>> &out)
{
    if (v == dst) {
        out.push_back(edges);
        return;
    }
    for (const auto &a : g.neighbors(v)) {
        if (a.to == v || visited[a.to])
            continue;
        // Avoid walking the same adjacency entry twice for self-loop
        // bookkeeping (self-loops appear twice in the list).
        visited[a.to] = 1;
        edges.push_back(a.edge);
        allSimplePaths(g, a.to, dst, visited, edges, out);
        edges.pop_back();
        visited[a.to] = 0;
    }
}

class YenBruteForceTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(YenBruteForceTest, MatchesExhaustiveEnumeration)
{
    Rng rng(GetParam());
    const int n = rng.uniformInt(4, 7);
    Graph g(n);
    const int m = rng.uniformInt(n, 2 * n);
    for (int i = 0; i < m; ++i) {
        int u = rng.uniformInt(0, n - 1), v = rng.uniformInt(0, n - 1);
        if (u != v)
            g.addEdge(u, v); // parallel edges allowed
    }
    const int src = 0, dst = n - 1;

    std::vector<char> visited(size_t(n), 0);
    visited[src] = 1;
    std::vector<int> edges;
    std::vector<std::vector<int>> exhaustive;
    allSimplePaths(g, src, dst, visited, edges, exhaustive);

    const int k = 8;
    auto yen = yenKShortestPaths(g, src, dst, k);

    // Count matches.
    ASSERT_EQ(yen.size(),
              std::min<size_t>(exhaustive.size(), size_t(k)));

    // Yen's lengths must equal the k smallest exhaustive lengths.
    std::vector<size_t> lengths;
    for (const auto &p : exhaustive)
        lengths.push_back(p.size());
    std::sort(lengths.begin(), lengths.end());
    for (size_t i = 0; i < yen.size(); ++i)
        EXPECT_EQ(size_t(yen[i].length()), lengths[i]) << "rank " << i;

    // Every Yen path must appear in the exhaustive set, distinct.
    for (size_t i = 0; i < yen.size(); ++i) {
        EXPECT_NE(std::find(exhaustive.begin(), exhaustive.end(),
                            yen[i].edges),
                  exhaustive.end());
        for (size_t j = i + 1; j < yen.size(); ++j)
            EXPECT_NE(yen[i].edges, yen[j].edges);
    }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, YenBruteForceTest,
                         ::testing::Range(uint64_t(1), uint64_t(16)));

} // namespace
} // namespace qzz::graph
