/**
 * @file
 * Property tests for the perturbative scaling laws behind Fig. 16.
 *
 * With the first-order Dyson term intact (Gaussian pulses), the
 * suppression infidelity scales as lambda^2; with the first-order
 * term cancelled (DCG identity, whose echo is exact), the residual
 * scales as lambda^4.  The log-log slopes are measured over a decade.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/units.h"
#include "core/dcg.h"
#include "core/objectives.h"
#include "core/regions.h"
#include "linalg/expm.h"
#include "pulse/library.h"

namespace qzz::core {
namespace {

/** Fit the log-log slope of infidelity(lambda) over points. */
double
slopeOf(const std::function<double(double)> &infid,
        const std::vector<double> &lambdas)
{
    // Least-squares slope in log-log space.
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    const double n = double(lambdas.size());
    for (double l : lambdas) {
        const double x = std::log(l);
        const double y = std::log(std::max(infid(l), 1e-300));
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
    }
    return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

TEST(ScalingTest, GaussianSxIsQuadraticInLambda)
{
    auto p = pulse::PulseLibrary::gaussian().get(pulse::PulseGate::SX);
    const la::CMatrix target = la::expPauli(kPi / 4.0, 0.0, 0.0);
    auto infid = [&](double l) {
        return oneQubitCrosstalkInfidelity(p, target, l, {}, 0.02);
    };
    const double slope =
        slopeOf(infid, {khz(50), khz(100), khz(200), khz(400)});
    EXPECT_NEAR(slope, 2.0, 0.1);
}

TEST(ScalingTest, GaussianIdentityIsQuadraticInLambda)
{
    auto p = pulse::PulseLibrary::gaussian().get(
        pulse::PulseGate::Identity);
    auto infid = [&](double l) {
        return oneQubitCrosstalkInfidelity(p, la::identity2(), l, {},
                                           0.02);
    };
    const double slope =
        slopeOf(infid, {khz(50), khz(100), khz(200), khz(400)});
    EXPECT_NEAR(slope, 2.0, 0.1);
}

TEST(ScalingTest, DcgIdentityIsQuarticInLambda)
{
    auto p = dcgIdentity();
    auto infid = [&](double l) {
        return oneQubitCrosstalkInfidelity(p, la::identity2(), l, {},
                                           0.005);
    };
    // Larger strengths keep the quartic term above integrator noise.
    const double slope =
        slopeOf(infid, {mhz(0.5), mhz(0.75), mhz(1.0), mhz(1.5)});
    EXPECT_GT(slope, 3.4);
}

TEST(ScalingTest, IdleQubitAccumulatesLinearPhase)
{
    // Sanity anchor for the circuit-level story: an undriven pulse
    // program (pure idling next to a spectator) has first-order
    // norm exactly ||sz||_F = sqrt(2) after normalization.
    auto idle = pulse::PulseProgram::idle(20.0);
    EXPECT_NEAR(firstOrderCrosstalkNorm(idle, 0.0, 0.01),
                std::sqrt(2.0), 1e-6);
}

class GaussianQuadraticSweep
    : public ::testing::TestWithParam<double>
{
};

TEST_P(GaussianQuadraticSweep, LocalQuadraticRatioHolds)
{
    // Doubling lambda quadruples the Gaussian infidelity, pointwise
    // across the sweep (the property behind the Fig. 16 slope).
    const double l = GetParam();
    auto p = pulse::PulseLibrary::gaussian().get(pulse::PulseGate::SX);
    const la::CMatrix target = la::expPauli(kPi / 4.0, 0.0, 0.0);
    const double i1 =
        oneQubitCrosstalkInfidelity(p, target, l, {}, 0.02);
    const double i2 =
        oneQubitCrosstalkInfidelity(p, target, 2.0 * l, {}, 0.02);
    EXPECT_NEAR(i2 / i1, 4.0, 0.5) << "lambda = " << toKhz(l) << " kHz";
}

INSTANTIATE_TEST_SUITE_P(LambdaSweep, GaussianQuadraticSweep,
                         ::testing::Values(khz(25.0), khz(50.0),
                                           khz(100.0), khz(200.0),
                                           khz(300.0)));

} // namespace
} // namespace qzz::core
