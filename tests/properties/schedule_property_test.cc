/**
 * @file
 * Randomized schedule invariants: for random logical circuits routed
 * onto random grid devices, both schedulers must (i) schedule every
 * gate exactly once with no qubit reuse inside a layer, (ii) agree on
 * the ideal output state, and (iii) ZZXSched's layers must realize
 * their recorded cuts and stay within the suppression requirement
 * whenever no fallback was needed.
 */

#include <gtest/gtest.h>

#include "circuit/decompose.h"
#include "circuit/router.h"
#include "common/rng.h"
#include "core/par_sched.h"
#include "core/zzx_sched.h"
#include "graph/topologies.h"
#include "sim/ideal_sim.h"

namespace qzz::core {
namespace {

struct Case
{
    uint64_t seed;
    int rows;
    int cols;
    int gates;
};

class SchedulePropertyTest : public ::testing::TestWithParam<Case>
{
  protected:
    static ckt::QuantumCircuit
    randomCircuit(int n, int gates, Rng &rng)
    {
        ckt::QuantumCircuit c(n);
        for (int i = 0; i < gates; ++i) {
            switch (rng.uniformInt(0, 4)) {
            case 0:
                c.h(rng.uniformInt(0, n - 1));
                break;
            case 1:
                c.t(rng.uniformInt(0, n - 1));
                break;
            case 2:
                c.sx(rng.uniformInt(0, n - 1));
                break;
            default: {
                int a = rng.uniformInt(0, n - 1);
                int b = rng.uniformInt(0, n - 1);
                if (a != b)
                    c.cx(a, b);
                break;
            }
            }
        }
        if (c.empty())
            c.h(0);
        return c;
    }
};

TEST_P(SchedulePropertyTest, InvariantsHold)
{
    const Case &cfg = GetParam();
    Rng rng(cfg.seed);
    const int n = cfg.rows * cfg.cols;
    auto topo = graph::gridTopology(cfg.rows, cfg.cols);
    dev::Device device(topo, dev::DeviceParams{}, rng);

    ckt::QuantumCircuit logical = randomCircuit(n, cfg.gates, rng);
    ckt::QuantumCircuit native = ckt::decomposeToNative(
        ckt::routeCircuit(logical, device.graph()).circuit);

    const GateDurations durations{};
    Schedule par = parSchedule(native, device, durations);
    Schedule zzx = zzxSchedule(native, device, durations);

    for (const Schedule *s : {&par, &zzx}) {
        int total = 0;
        for (const Layer &l : s->layers) {
            std::vector<int> used(size_t(n), 0);
            for (const ScheduledGate &sg : l.gates) {
                if (!sg.supplemented)
                    ++total;
                if (sg.gate.isVirtual())
                    continue;
                for (int q : sg.gate.qubits) {
                    EXPECT_EQ(used[q], 0);
                    used[q] = 1;
                }
            }
        }
        EXPECT_EQ(total, int(native.size()));
    }

    // Same logical semantics.
    sim::StateVector a = sim::runIdealSchedule(par);
    sim::StateVector b = sim::runIdealSchedule(zzx);
    EXPECT_NEAR(a.fidelity(b), 1.0, 1e-9);

    // ZZXSched layers realize their cuts.
    for (const Layer &l : zzx.layers) {
        if (l.is_virtual)
            continue;
        SuppressionMetrics m = evaluateCut(device.graph(), l.side);
        EXPECT_EQ(m.nc, l.metrics.nc);
        EXPECT_EQ(m.nq, l.metrics.nq);
    }

    // Parallelism cost stays bounded.
    EXPECT_LE(zzx.executionTime(),
              3.0 * par.executionTime() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    RandomCircuits, SchedulePropertyTest,
    ::testing::Values(Case{1, 2, 2, 10}, Case{2, 2, 2, 25},
                      Case{3, 2, 3, 20}, Case{4, 2, 3, 40},
                      Case{5, 3, 3, 30}, Case{6, 3, 3, 60},
                      Case{7, 3, 4, 40}, Case{8, 3, 4, 80},
                      Case{9, 1, 4, 15}, Case{10, 2, 5, 35}),
    [](const ::testing::TestParamInfo<Case> &info) {
        const Case &c = info.param;
        return "grid" + std::to_string(c.rows) +
               "x" + std::to_string(c.cols) + "_g" +
               std::to_string(c.gates) + "_s" +
               std::to_string(c.seed);
    });

} // namespace
} // namespace qzz::core
