/**
 * @file
 * Differential fuzz of the scheduling stack against the exact oracle.
 *
 * Hundreds of seed-pinned random layers over the small-topology sweep
 * (grid, triangulated grid, odd/even ring, heavy-hex), each solved
 * both by the heuristic SuppressionSolver and the branch-and-bound
 * ExactCutSolver:
 *
 *  - the exact cost is never beaten by any heuristic cut — under the
 *    classic objective and the calibration-weighted one;
 *  - every exact search on these sizes completes within the default
 *    budget (status Optimal);
 *  - the exact solver is deterministic: fresh solvers on the same
 *    instance return bit-identical cuts and node counts;
 *  - full schedules from every policy are structurally valid, and the
 *    cut-based policies respect the suppression requirement R (via
 *    the shared tests/common checker).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>

#include "common/random_circuits.h"
#include "common/rng.h"
#include "common/suppression_invariants.h"
#include "common/units.h"
#include "core/cycle_sched.h"
#include "core/exact_sched.h"
#include "core/par_sched.h"
#include "graph/topologies.h"

namespace qzz::core {
namespace {

constexpr int kSeedsPerTopology = 60; // x5 topologies = 300 layers

/** Union of qubits touched by two-qubit gates (the constrained set a
 *  frontier walk would hand the solver for this layer). */
std::vector<int>
twoQubitSet(const ckt::QuantumCircuit &c)
{
    std::vector<int> q;
    for (const ckt::Gate &g : c.gates())
        if (g.isTwoQubit())
            for (int v : g.qubits)
                q.push_back(v);
    std::sort(q.begin(), q.end());
    q.erase(std::unique(q.begin(), q.end()), q.end());
    return q;
}

double
heuristicCost(const SuppressionSolver &solver,
              const std::vector<int> &q, const SuppressionOptions &opt)
{
    const SuppressionResult res = solver.solve(q, opt);
    return cutPrimaryObjective(res.metrics, opt.alpha, opt.edge_zz);
}

TEST(SchedOracleTest, ExactNeverBeatenOnGeneratedLayersClassic)
{
    for (const graph::Topology &topo :
         testsup::smallSweepTopologies()) {
        SuppressionSolver heuristic(topo);
        ExactCutSolver exact(topo.g);
        for (int seed = 0; seed < kSeedsPerTopology; ++seed) {
            const ckt::QuantumCircuit layer = testsup::randomLayer(
                topo, uint64_t(seed) * 7919u + 13u);
            const std::vector<int> q = twoQubitSet(layer);

            const ExactCutResult e = exact.solve(q);
            ASSERT_EQ(e.status, ExactStatus::Optimal)
                << topo.name << " seed " << seed;
            for (int v : q)
                ASSERT_EQ(e.side[size_t(v)], 1)
                    << topo.name << " seed " << seed;

            const double h =
                heuristicCost(heuristic, q, SuppressionOptions{});
            EXPECT_LE(e.objective, h + 1e-9)
                << topo.name << " seed " << seed << " |Q|="
                << q.size();
        }
    }
}

TEST(SchedOracleTest, ExactNeverBeatenOnGeneratedLayersWeighted)
{
    Rng jitter_rng(20260808);
    for (const graph::Topology &topo :
         testsup::smallSweepTopologies()) {
        // Jittered snapshot: couplings drawn from DeviceParams'
        // nonzero-stddev distribution, so the weighted objective is
        // genuinely non-uniform.
        const dev::Device dev(topo, dev::DeviceParams{}, jitter_rng);
        const std::vector<double> zz = dev.couplings();
        SuppressionOptions wopt;
        wopt.edge_zz = &zz;

        SuppressionSolver heuristic(topo);
        ExactCutSolver exact(topo.g);
        for (int seed = 0; seed < kSeedsPerTopology; ++seed) {
            const ckt::QuantumCircuit layer = testsup::randomLayer(
                topo, uint64_t(seed) * 104729u + 7u);
            const std::vector<int> q = twoQubitSet(layer);

            const ExactCutResult e = exact.solve(q, wopt);
            ASSERT_EQ(e.status, ExactStatus::Optimal)
                << topo.name << " seed " << seed;

            const double h = heuristicCost(heuristic, q, wopt);
            EXPECT_LE(e.objective, h + 1e-9)
                << topo.name << " seed " << seed << " |Q|="
                << q.size();
            // The weighted winner is never worse under its own
            // objective than the classic winner.
            const ExactCutResult ec = exact.solve(q);
            EXPECT_LE(e.objective,
                      cutPrimaryObjective(ec.metrics, wopt.alpha,
                                          wopt.edge_zz) +
                          1e-9)
                << topo.name << " seed " << seed;
        }
    }
}

TEST(SchedOracleTest, ExactIsDeterministicAcrossRuns)
{
    for (const graph::Topology &topo :
         testsup::smallSweepTopologies()) {
        ExactCutSolver a(topo.g);
        ExactCutSolver b(topo.g);
        for (int seed = 0; seed < 10; ++seed) {
            const ckt::QuantumCircuit layer = testsup::randomLayer(
                topo, uint64_t(seed) * 31u + 3u);
            const std::vector<int> q = twoQubitSet(layer);
            const ExactCutResult r1 = a.solve(q);
            const ExactCutResult r2 = b.solve(q);
            EXPECT_EQ(r1.side, r2.side)
                << topo.name << " seed " << seed;
            EXPECT_EQ(r1.nodes, r2.nodes)
                << topo.name << " seed " << seed;
            EXPECT_DOUBLE_EQ(r1.objective, r2.objective);
        }
    }
}

TEST(SchedOracleTest, AllPoliciesScheduleGeneratedCircuitsValidly)
{
    const GateDurations durations{};
    for (const graph::Topology &topo :
         testsup::smallSweepTopologies()) {
        std::vector<double> couplings(size_t(topo.g.numEdges()),
                                      khz(200.0));
        const dev::Device dev(topo, dev::DeviceParams{}, couplings);
        const ZzxOptions resolved = resolveZzxOptions({}, dev);
        const ZzxDeviceTables ztables(dev);
        const ExactDeviceTables etables(dev);

        for (int seed = 0; seed < 8; ++seed) {
            const ckt::QuantumCircuit c = testsup::randomNativeCircuit(
                topo, 5, uint64_t(seed) * 6151u + 1u);
            const std::string ctx =
                topo.name + " seed " + std::to_string(seed);

            const Schedule par = parSchedule(c, dev, durations);
            testsup::expectValidSchedule(par, c, dev, ctx + " par");

            const Schedule zzx =
                zzxSchedule(c, dev, durations, {}, ztables);
            const Schedule wgt =
                zzxWeightedSchedule(c, dev, durations, {}, ztables);
            const Schedule cyc =
                cycleAwareSchedule(c, dev, durations, {}, ztables);
            const Schedule exa = exactSchedule(c, dev, durations, {},
                                               ExactLimits{}, etables);
            const std::pair<const Schedule *, const char *> cut_based[] =
                {{&zzx, "zzx"},
                 {&wgt, "wgt"},
                 {&cyc, "cyc"},
                 {&exa, "exact"}};
            for (const auto &[s, label] : cut_based) {
                testsup::expectValidSchedule(*s, c, dev,
                                             ctx + " " + label);
                testsup::expectSuppressionInvariants(
                    *s, dev, resolved, ctx + " " + label);
            }
        }
    }
}

} // namespace
} // namespace qzz::core
