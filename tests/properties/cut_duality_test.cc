/**
 * @file
 * Property tests for the planar cut <-> odd-vertex-pairing duality
 * (Theorem 3.1) across a family of topologies and constrained
 * queries, using parameterized sweeps.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/suppression.h"
#include "graph/topologies.h"

namespace qzz::core {
namespace {

struct TopoCase
{
    const char *name;
    graph::Topology (*make)();
};

graph::Topology
makeGrid34()
{
    return graph::gridTopology(3, 4);
}
graph::Topology
makeGrid44()
{
    return graph::gridTopology(4, 4);
}
graph::Topology
makeTrigrid33()
{
    return graph::triangulatedGridTopology(3, 3);
}
graph::Topology
makeRing7()
{
    return graph::ringTopology(7);
}
graph::Topology
makeLine9()
{
    return graph::lineTopology(9);
}

class CutDualityTest : public ::testing::TestWithParam<TopoCase>
{
};

TEST_P(CutDualityTest, UnconstrainedCutIsMaxCutQuality)
{
    // The remaining-set of the solver's cut can never beat the
    // trivial bound and must satisfy evaluateCut self-consistency.
    graph::Topology topo = GetParam().make();
    SuppressionSolver solver(topo);
    SuppressionResult res = solver.solve({});
    SuppressionMetrics check = evaluateCut(topo.g, res.side);
    EXPECT_EQ(check.nc, res.metrics.nc);
    EXPECT_EQ(check.nq, res.metrics.nq);
    // A bipartite topology must reach complete suppression.
    if (topo.g.twoColor().has_value()) {
        EXPECT_EQ(res.metrics.nc, 0);
        EXPECT_EQ(res.metrics.nq, 1);
    } else {
        EXPECT_GE(res.metrics.nc, 1);
    }
}

TEST_P(CutDualityTest, RemainingSetComponentsShareASide)
{
    // Theorem 5.1: vertices in one connected component of the
    // remaining-set belong to the same partition.
    graph::Topology topo = GetParam().make();
    SuppressionSolver solver(topo);
    SuppressionResult res = solver.solve({});
    const auto &m = res.metrics;
    for (const graph::Edge &e : topo.g.edges())
        if (m.unsuppressed_edge[e.id]) {
            EXPECT_EQ(res.side[e.u], res.side[e.v]);
        }
    for (int u = 0; u < topo.g.numVertices(); ++u)
        for (int v = 0; v < topo.g.numVertices(); ++v)
            if (m.region_of[u] == m.region_of[v]) {
                EXPECT_EQ(res.side[u], res.side[v]);
            }
}

TEST_P(CutDualityTest, ConstrainedQueriesKeepQTogether)
{
    graph::Topology topo = GetParam().make();
    SuppressionSolver solver(topo);
    Rng rng(99);
    for (int trial = 0; trial < 10; ++trial) {
        // Random adjacent pair plus possibly a second one.
        const auto &e1 = topo.g.edges()[size_t(
            rng.uniformInt(0, topo.g.numEdges() - 1))];
        std::vector<int> q{e1.u, e1.v};
        if (trial % 2 == 0) {
            const auto &e2 = topo.g.edges()[size_t(
                rng.uniformInt(0, topo.g.numEdges() - 1))];
            if (e2.u != e1.u && e2.u != e1.v && e2.v != e1.u &&
                e2.v != e1.v) {
                q.push_back(e2.u);
                q.push_back(e2.v);
            }
        }
        SuppressionResult res = solver.solve(q);
        for (size_t i = 1; i < q.size(); ++i)
            EXPECT_EQ(res.side[q[i]], res.side[q[0]])
                << GetParam().name << " trial " << trial;
        // Gate edges always stay unsuppressed (they join same-side
        // vertices), so NC is at least the number of gate edges.
        int gate_edges = 0;
        for (const graph::Edge &e : topo.g.edges()) {
            bool u_in = false, v_in = false;
            for (int x : q) {
                u_in = u_in || x == e.u;
                v_in = v_in || x == e.v;
            }
            if (u_in && v_in)
                ++gate_edges;
        }
        EXPECT_GE(res.metrics.nc, gate_edges);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, CutDualityTest,
    ::testing::Values(TopoCase{"grid34", makeGrid34},
                      TopoCase{"grid44", makeGrid44},
                      TopoCase{"trigrid33", makeTrigrid33},
                      TopoCase{"ring7", makeRing7},
                      TopoCase{"line9", makeLine9}),
    [](const ::testing::TestParamInfo<TopoCase> &info) {
        return info.param.name;
    });

} // namespace
} // namespace qzz::core
