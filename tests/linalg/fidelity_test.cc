#include "linalg/fidelity.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "linalg/expm.h"

namespace qzz::la {
namespace {

TEST(FidelityTest, IdenticalUnitariesGiveOne)
{
    CMatrix u = expPauli(0.3, 0.1, -0.2);
    EXPECT_NEAR(averageGateFidelity(u, u), 1.0, 1e-13);
    EXPECT_NEAR(processFidelity(u, u), 1.0, 1e-13);
}

TEST(FidelityTest, GlobalPhaseInvariance)
{
    CMatrix u = expPauli(0.4, 0.0, 0.9);
    CMatrix v = std::exp(kI * 1.2345) * u;
    EXPECT_NEAR(averageGateFidelity(u, v), 1.0, 1e-13);
}

TEST(FidelityTest, OrthogonalGatesScoreLow)
{
    // F_avg(X, I) = (d + |tr(X)|^2)/(d(d+1)) = 2/6 = 1/3 for d = 2.
    EXPECT_NEAR(averageGateFidelity(pauliX(), identity2()), 1.0 / 3.0,
                1e-13);
}

TEST(FidelityTest, SmallRotationQuadraticInAngle)
{
    // For d = 2: F = (4 + 2 cos(eps)) / 6, so 1 - F ~ eps^2 / 6.
    for (double eps : {1e-2, 1e-3}) {
        CMatrix u = expPauli(eps / 2.0, 0.0, 0.0);
        double infid = 1.0 - averageGateFidelity(u, identity2());
        EXPECT_NEAR(infid, eps * eps / 6.0, eps * eps * 0.02)
            << "eps=" << eps;
    }
}

TEST(FidelityTest, ProcessVsAverageRelation)
{
    // F_avg = (d F_pro + 1) / (d + 1).
    CMatrix u = expPauli(0.2, 0.5, -0.1);
    CMatrix v = expPauli(0.1, 0.4, 0.3);
    const double d = 2.0;
    const double f_pro = processFidelity(u, v);
    const double f_avg = averageGateFidelity(u, v);
    EXPECT_NEAR(f_avg, (d * f_pro + 1.0) / (d + 1.0), 1e-13);
}

TEST(FidelityTest, NonUnitaryProjectionPenalized)
{
    // A "leaky" comparison operator with tr(MM^dag) < d must score
    // below 1 even when aligned.
    CMatrix m{{1.0, 0.0}, {0.0, 0.9}};
    const double f = averageGateFidelityFromM(m);
    EXPECT_LT(f, 1.0);
    EXPECT_GT(f, 0.8);
}

TEST(FidelityTest, StateFidelityBasics)
{
    CVector a{1.0, 0.0};
    CVector b{0.0, 1.0};
    EXPECT_NEAR(stateFidelity(a, a), 1.0, 1e-14);
    EXPECT_NEAR(stateFidelity(a, b), 0.0, 1e-14);
    CVector c{std::sqrt(0.5), std::sqrt(0.5)};
    EXPECT_NEAR(stateFidelity(a, c), 0.5, 1e-12);
}

} // namespace
} // namespace qzz::la
