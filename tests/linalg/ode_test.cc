#include "ode/propagator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/units.h"
#include "linalg/expm.h"
#include "linalg/fidelity.h"

namespace qzz::ode {
namespace {

using la::CMatrix;
using la::cplx;

TEST(PropagatorTest, ConstantHamiltonianMatchesExpm)
{
    CMatrix h = 0.3 * la::pauliX() + 0.1 * la::pauliZ();
    auto hfn = [&](double, CMatrix &out) { out = h; };
    CMatrix u = propagate(hfn, 2, 0.0, 5.0);
    CMatrix exact = la::expmPropagator(h, 5.0);
    EXPECT_LT(la::distance(u, exact), 1e-9);
}

TEST(PropagatorTest, ZeroHamiltonianIsIdentity)
{
    auto hfn = [](double, CMatrix &) {};
    CMatrix u = propagate(hfn, 3, 0.0, 10.0);
    EXPECT_TRUE(u.isIdentity(1e-12));
}

TEST(PropagatorTest, PreservesUnitarity)
{
    auto hfn = [](double t, CMatrix &h) {
        h(0, 1) = cplx{0.2 * std::sin(t), 0.0};
        h(1, 0) = cplx{0.2 * std::sin(t), 0.0};
        h(0, 0) = 0.1 * std::cos(t);
        h(1, 1) = -0.1 * std::cos(t);
    };
    CMatrix u = propagate(hfn, 2, 0.0, 20.0);
    EXPECT_TRUE(u.isUnitary(1e-9));
}

TEST(PropagatorTest, RotatingDriveAnalyticSolution)
{
    // H = w/2 sz is solvable: U(t) = exp(-i w t sz / 2).
    const double w = 0.7;
    auto hfn = [&](double, CMatrix &h) {
        h(0, 0) = w / 2.0;
        h(1, 1) = -w / 2.0;
    };
    CMatrix u = propagate(hfn, 2, 0.0, 3.0);
    EXPECT_NEAR(std::abs(u(0, 0) - std::exp(cplx{0.0, -w * 1.5})), 0.0,
                1e-10);
}

TEST(PropagatorTest, FourthOrderConvergence)
{
    auto hfn = [](double t, CMatrix &h) {
        const double o = 0.3 * (1.0 - std::cos(kTwoPi * t / 20.0));
        h(0, 1) = o;
        h(1, 0) = o;
    };
    PropagationOptions fine;
    fine.dt = 0.002;
    CMatrix ref = propagate(hfn, 2, 0.0, 20.0, fine);

    auto err = [&](double dt) {
        PropagationOptions o;
        o.dt = dt;
        return la::distance(propagate(hfn, 2, 0.0, 20.0, o), ref);
    };
    const double e1 = err(0.2);
    const double e2 = err(0.1);
    // Order 4: halving dt shrinks the error ~16x.
    EXPECT_GT(e1 / e2, 10.0);
}

TEST(PropagatorTest, TimeWindowOffset)
{
    // Integrating over [t0, t1] only sees H on that window.
    auto hfn = [](double t, CMatrix &h) {
        const double o = (t >= 5.0) ? 0.4 : 0.0;
        h(0, 1) = o;
        h(1, 0) = o;
    };
    CMatrix u_early = propagate(hfn, 2, 0.0, 4.9);
    EXPECT_TRUE(u_early.isIdentity(1e-9));
}

TEST(DysonTest, FreeEvolutionIntegralIsLinear)
{
    // With H = 0, M = int sz dt = T sz.
    auto hfn = [](double, CMatrix &) {};
    auto res =
        propagateWithDyson(hfn, {la::pauliZ()}, 2, 0.0, 7.0);
    CMatrix expected = 7.0 * la::pauliZ();
    EXPECT_LT(la::distance(res.firstOrder[0], expected), 1e-9);
    EXPECT_TRUE(res.u.isIdentity(1e-10));
}

TEST(DysonTest, SpinEchoCancelsFirstOrder)
{
    // A hard pi pulse at T/2 (strong square x drive) echoes sigma_z:
    // the first-order integral nearly vanishes.
    const double T = 10.0;
    const double width = 0.2;
    const double amp = kPi / 2.0 / width; // theta = 2*amp*width = pi
    auto hfn = [&](double t, CMatrix &h) {
        const bool on = std::abs(t - T / 2.0) < width / 2.0;
        const double o = on ? amp : 0.0;
        h(0, 1) = o;
        h(1, 0) = o;
    };
    PropagationOptions opt;
    opt.dt = 0.001;
    auto res = propagateWithDyson(hfn, {la::pauliZ()}, 2, 0.0, T, opt);
    // Without the echo the norm would be ~ T * ||sz|| = 14.1.
    EXPECT_LT(res.firstOrder[0].frobeniusNorm(), 0.5);
}

TEST(DysonTest, FirstOrderPredictsWeakCouplingError)
{
    // For H = H0 + lambda sz with H0 = 0, U = exp(-i lambda T sz);
    // first-order Dyson reproduces it: U ~ I - i lambda M.
    const double T = 5.0;
    auto hfn = [](double, CMatrix &) {};
    auto res = propagateWithDyson(hfn, {la::pauliZ()}, 2, 0.0, T);
    const double lambda = 1e-3;
    CMatrix approx = la::CMatrix::identity(2);
    CMatrix corr = res.firstOrder[0];
    corr *= cplx{0.0, -lambda};
    approx += corr;
    CMatrix exact = la::expmPropagator(la::pauliZ(), lambda * T);
    EXPECT_LT(la::distance(approx, exact), 2.0 * lambda * lambda * T * T);
}

} // namespace
} // namespace qzz::ode
