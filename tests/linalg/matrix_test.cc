#include "linalg/matrix.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace qzz::la {
namespace {

TEST(MatrixTest, IdentityAndZero)
{
    auto id = CMatrix::identity(3);
    EXPECT_TRUE(id.isIdentity());
    auto z = CMatrix::zero(3);
    EXPECT_EQ(z.frobeniusNorm(), 0.0);
}

TEST(MatrixTest, InitializerListAndAccess)
{
    CMatrix m{{1.0, 2.0}, {3.0, kI}};
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m(1, 1), kI);
    EXPECT_THROW((CMatrix{{1.0}, {1.0, 2.0}}), UserError);
}

TEST(MatrixTest, ArithmeticOps)
{
    CMatrix a{{1, 2}, {3, 4}};
    CMatrix b{{5, 6}, {7, 8}};
    CMatrix sum = a + b;
    EXPECT_EQ(sum(0, 0), cplx(6.0));
    CMatrix diff = b - a;
    EXPECT_EQ(diff(1, 1), cplx(4.0));
    CMatrix prod = a * b;
    EXPECT_EQ(prod(0, 0), cplx(19.0));
    EXPECT_EQ(prod(1, 1), cplx(50.0));
    CMatrix scaled = 2.0 * a;
    EXPECT_EQ(scaled(1, 0), cplx(6.0));
}

TEST(MatrixTest, DaggerConjTranspose)
{
    CMatrix m{{1.0, kI}, {2.0, -kI}};
    CMatrix d = m.dagger();
    EXPECT_EQ(d(0, 1), cplx(2.0));
    EXPECT_EQ(d(1, 0), -kI);
    EXPECT_EQ(m.transpose()(0, 1), cplx(2.0));
    EXPECT_EQ(m.conj()(0, 1), -kI);
}

TEST(MatrixTest, TraceAndNorm)
{
    CMatrix m{{1, 2}, {3, 4}};
    EXPECT_EQ(m.trace(), cplx(5.0));
    EXPECT_NEAR(m.frobeniusNorm(), std::sqrt(30.0), 1e-12);
    EXPECT_EQ(m.maxAbs(), 4.0);
}

TEST(MatrixTest, PauliAlgebra)
{
    // sx sy = i sz and friends.
    CMatrix sxsy = pauliX() * pauliY();
    CMatrix isz = kI * pauliZ();
    EXPECT_LT(distance(sxsy, isz), 1e-14);
    // Paulis are Hermitian, unitary, traceless.
    for (const CMatrix &p : {pauliX(), pauliY(), pauliZ()}) {
        EXPECT_TRUE(p.isHermitian());
        EXPECT_TRUE(p.isUnitary());
        EXPECT_NEAR(std::abs(p.trace()), 0.0, 1e-14);
    }
}

TEST(MatrixTest, MatrixVectorProduct)
{
    CMatrix m{{0, 1}, {1, 0}};
    CVector v{1.0, 0.0};
    CVector r = m * v;
    EXPECT_EQ(r[0], cplx(0.0));
    EXPECT_EQ(r[1], cplx(1.0));
}

TEST(MatrixTest, KronDimensionsAndValues)
{
    CMatrix k = kron(pauliZ(), pauliX());
    EXPECT_EQ(k.rows(), 4u);
    EXPECT_EQ(k(0, 1), cplx(1.0));
    EXPECT_EQ(k(2, 3), cplx(-1.0));
    // Mixed-product property: (A(x)B)(C(x)D) = AC (x) BD.
    CMatrix lhs = kron(pauliX(), pauliY()) * kron(pauliY(), pauliZ());
    CMatrix rhs = kron(pauliX() * pauliY(), pauliY() * pauliZ());
    EXPECT_LT(distance(lhs, rhs), 1e-14);
}

TEST(MatrixTest, KronAll)
{
    CMatrix k =
        kronAll({identity2(), pauliX(), identity2()});
    EXPECT_EQ(k.rows(), 8u);
    CMatrix viaEmbed = embed(pauliX(), {1}, 3);
    EXPECT_LT(distance(k, viaEmbed), 1e-14);
}

TEST(MatrixTest, InnerProductAndDot)
{
    CMatrix a{{1, 0}, {0, 1}};
    CMatrix b{{2, 0}, {0, 3}};
    EXPECT_EQ(innerProduct(a, b), cplx(5.0));
    CVector u{kI, 1.0}, v{1.0, kI};
    // <u|v> = conj(i)*1 + 1*i = -i + i = 0.
    EXPECT_NEAR(std::abs(dot(u, v)), 0.0, 1e-14);
}

TEST(MatrixTest, NormalizeVector)
{
    CVector v{3.0, 4.0};
    EXPECT_DOUBLE_EQ(normalize(v), 5.0);
    EXPECT_NEAR(norm(v), 1.0, 1e-14);
}

TEST(MatrixTest, PhaseDistanceIgnoresGlobalPhase)
{
    CMatrix u = pauliX();
    CMatrix v = std::exp(kI * 0.7) * pauliX();
    EXPECT_GT(distance(u, v), 0.1);
    // Cancellation limits the precision to ~sqrt(machine epsilon).
    EXPECT_LT(phaseDistance(u, v), 1e-7);
}

TEST(MatrixTest, EmbedSingleQubitOnEachPosition)
{
    // X on qubit 0 of 2 (MSB) flips the high bit.
    CMatrix x0 = embed(pauliX(), {0}, 2);
    EXPECT_EQ(x0(0, 2), cplx(1.0));
    EXPECT_EQ(x0(1, 3), cplx(1.0));
    CMatrix x1 = embed(pauliX(), {1}, 2);
    EXPECT_EQ(x1(0, 1), cplx(1.0));
    EXPECT_EQ(x1(2, 3), cplx(1.0));
}

TEST(MatrixTest, EmbedTwoQubitRespectsOrder)
{
    // CNOT with control=qubit 1, target=qubit 0 in a 2-qubit register
    // (standard matrix: control is the operator's first factor).
    CMatrix cnot{{1, 0, 0, 0},
                 {0, 1, 0, 0},
                 {0, 0, 0, 1},
                 {0, 0, 1, 0}};
    // As an operator on (control, target) = (q1, q0): |c t> ordering of
    // the embedded register is |q0 q1>.
    CMatrix e = embed(cnot, {1, 0}, 2);
    // Basis |q0 q1>: control q1 is the LSB.  |01> -> |11>, |11> -> |01>.
    EXPECT_EQ(e(3, 1), cplx(1.0));
    EXPECT_EQ(e(1, 3), cplx(1.0));
    EXPECT_EQ(e(0, 0), cplx(1.0));
    EXPECT_EQ(e(2, 2), cplx(1.0));
}

TEST(MatrixTest, EmbedRejectsBadArgs)
{
    EXPECT_THROW(embed(pauliX(), {5}, 2), UserError);
    EXPECT_THROW(embed(pauliX(), {0, 1}, 2), UserError);
    EXPECT_THROW(embed(pauliX(), {0}, 0), UserError);
}

} // namespace
} // namespace qzz::la
