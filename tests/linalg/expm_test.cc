#include "linalg/expm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/units.h"

namespace qzz::la {
namespace {

TEST(LuSolveTest, SolvesKnownSystem)
{
    CMatrix a{{2, 1}, {1, 3}};
    CMatrix b{{5}, {10}};
    CMatrix x = luSolve(a, b);
    EXPECT_NEAR(std::abs(x(0, 0) - cplx(1.0)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(x(1, 0) - cplx(3.0)), 0.0, 1e-12);
}

TEST(LuSolveTest, ComplexSystem)
{
    CMatrix a{{kI, 1}, {1, kI}};
    CMatrix rhs = a * CMatrix{{cplx(2.0)}, {cplx(0.0, 3.0)}};
    CMatrix x = luSolve(a, rhs);
    EXPECT_NEAR(std::abs(x(0, 0) - cplx(2.0)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(x(1, 0) - cplx(0.0, 3.0)), 0.0, 1e-12);
}

TEST(LuSolveTest, SingularMatrixRejected)
{
    CMatrix a{{1, 1}, {1, 1}};
    EXPECT_THROW(luSolve(a, CMatrix::identity(2)), UserError);
}

TEST(InverseTest, InverseTimesSelfIsIdentity)
{
    CMatrix a{{1, 2, 0}, {kI, 1, 3}, {0, 2, 1}};
    CMatrix inv = inverse(a);
    EXPECT_TRUE((a * inv).isIdentity(1e-10));
    EXPECT_TRUE((inv * a).isIdentity(1e-10));
}

TEST(ExpmTest, ZeroGivesIdentity)
{
    EXPECT_TRUE(expm(CMatrix::zero(4)).isIdentity(1e-13));
}

TEST(ExpmTest, DiagonalCase)
{
    CMatrix d = CMatrix::diag({cplx(1.0), cplx(0.0, 2.0)});
    CMatrix e = expm(d);
    EXPECT_NEAR(std::abs(e(0, 0) - std::exp(cplx(1.0))), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(e(1, 1) - std::exp(cplx(0.0, 2.0))), 0.0,
                1e-12);
    EXPECT_NEAR(std::abs(e(0, 1)), 0.0, 1e-13);
}

TEST(ExpmTest, PauliRotationMatchesClosedForm)
{
    for (double theta : {0.1, 1.0, 2.5, 7.0, 20.0}) {
        CMatrix gen = pauliX();
        gen *= cplx{0.0, -theta};
        CMatrix viaPade = expm(gen);
        CMatrix closed = expPauli(theta, 0.0, 0.0);
        EXPECT_LT(distance(viaPade, closed), 1e-11)
            << "theta=" << theta;
    }
}

TEST(ExpmTest, LargeNormScalingSquaring)
{
    // Norm >> Pade radius exercises the squaring phase.
    CMatrix gen = pauliY();
    gen *= cplx{0.0, -300.0};
    CMatrix e = expm(gen);
    CMatrix closed = expPauli(0.0, 300.0, 0.0);
    EXPECT_LT(distance(e, closed), 1e-8);
}

TEST(ExpmTest, PropagatorIsUnitaryForHermitianH)
{
    CMatrix h{{1.0, cplx(0.5, 0.2)}, {cplx(0.5, -0.2), -0.3}};
    ASSERT_TRUE(h.isHermitian());
    CMatrix u = expmPropagator(h, 2.7);
    EXPECT_TRUE(u.isUnitary(1e-12));
}

TEST(ExpPauliTest, AgreesWithRotationFormulas)
{
    // exp(-i theta/2 sx) = Rx(theta).
    const double theta = 1.234;
    CMatrix u = expPauli(theta / 2.0, 0.0, 0.0);
    EXPECT_NEAR(u(0, 0).real(), std::cos(theta / 2.0), 1e-14);
    EXPECT_NEAR(u(0, 1).imag(), -std::sin(theta / 2.0), 1e-14);
    // Zero rotation.
    EXPECT_TRUE(expPauli(0.0, 0.0, 0.0).isIdentity(1e-15));
}

TEST(ExpPauliTest, GeneralAxisIsUnitary)
{
    CMatrix u = expPauli(0.3, -0.7, 1.1);
    EXPECT_TRUE(u.isUnitary(1e-13));
    // Compare against Pade on the same generator.
    CMatrix gen = 0.3 * pauliX() + (-0.7) * pauliY() + 1.1 * pauliZ();
    gen *= cplx{0.0, -1.0};
    EXPECT_LT(distance(u, expm(gen)), 1e-12);
}

TEST(ExpInvolutoryTest, MatchesExpm)
{
    CMatrix p = kron(pauliZ(), pauliX());
    const double theta = 0.77;
    CMatrix closed = expInvolutory(p, theta);
    CMatrix gen = p;
    gen *= cplx{0.0, -theta};
    EXPECT_LT(distance(closed, expm(gen)), 1e-12);
    EXPECT_TRUE(closed.isUnitary(1e-12));
}

} // namespace
} // namespace qzz::la
