#include "sim/pulse_sim.h"

#include <gtest/gtest.h>

#include "circuit/gate.h"
#include "common/units.h"
#include "core/par_sched.h"
#include "core/zzx_sched.h"
#include "graph/topologies.h"
#include "sim/ideal_sim.h"
#include "sim/lindblad.h"

namespace qzz::sim {
namespace {

dev::Device
device(int rows, int cols, uint64_t seed = 7)
{
    Rng rng(seed);
    return dev::Device(graph::gridTopology(rows, cols),
                       dev::DeviceParams{}, rng);
}

core::Schedule
scheduleOf(const ckt::QuantumCircuit &c, const dev::Device &d)
{
    return core::parSchedule(c, d, core::GateDurations{});
}

TEST(PulseSimTest, NoCrosstalkReproducesIdealGates)
{
    // With couplings switched off the Gaussian pulses implement the
    // native gates almost exactly.
    auto dev = device(2, 2);
    ckt::QuantumCircuit c(4);
    c.sx(0);
    c.sx(1);
    c.rzx(0, 1, kPi / 2.0);
    c.sx(2);
    c.rzx(2, 3, kPi / 2.0);
    auto sched = scheduleOf(c, dev);

    PulseSimOptions opt;
    opt.crosstalk_scale = 0.0;
    PulseScheduleSimulator sim(
        dev, pulse::PulseLibrary::gaussian(), opt);
    StateVector actual = sim.run(sched);
    StateVector ideal = runIdealSchedule(sched);
    EXPECT_GT(ideal.fidelity(actual), 1.0 - 1e-6);
}

TEST(PulseSimTest, CrosstalkDegradesFidelity)
{
    auto dev = device(2, 2);
    ckt::QuantumCircuit c(4);
    for (int q = 0; q < 4; ++q)
        c.sx(q);
    for (int rep = 0; rep < 5; ++rep)
        for (int q = 0; q < 4; ++q)
            c.sx(q);
    auto sched = scheduleOf(c, dev);

    PulseScheduleSimulator sim(dev, pulse::PulseLibrary::gaussian());
    StateVector actual = sim.run(sched);
    StateVector ideal = runIdealSchedule(sched);
    EXPECT_LT(ideal.fidelity(actual), 1.0 - 1e-4);
}

TEST(PulseSimTest, IdleEvolutionIsPureZzPhases)
{
    // A schedule with one idle layer (identity on one qubit) lets ZZ
    // act; starting in |00> only phases accrue, fidelity stays 1 for
    // the diagonal bath.
    auto dev = device(1, 2);
    ckt::QuantumCircuit c(2);
    c.idle(0);
    auto sched = scheduleOf(c, dev);
    PulseScheduleSimulator sim(dev, pulse::PulseLibrary::gaussian());
    StateVector out = sim.run(sched);
    EXPECT_NEAR(std::abs(out.amplitudes()[0]), 1.0, 1e-7);
}

TEST(PulseSimTest, RamseyStyleZzPhaseMatchesTheory)
{
    // |+>(x)|1| under H = lambda sz sz for time T acquires a relative
    // phase 2 lambda T on the superposed qubit.
    Rng rng(3);
    dev::DeviceParams params;
    auto topo = graph::lineTopology(2);
    const double lambda = khz(200.0);
    dev::Device dev(topo, params, std::vector<double>{lambda});

    ckt::QuantumCircuit c(2);
    c.idle(1); // 20 ns idle layer; qubit 0 untouched
    auto sched = scheduleOf(c, dev);
    // Prepare |+> on 0 and |1> on 1 by hand.
    StateVector psi(2);
    psi.apply1Q(ckt::gateMatrix({ckt::GateKind::H, {0}}), 0);
    psi.apply1Q(ckt::gateMatrix({ckt::GateKind::X, {0}}), 1);

    PulseSimOptions opt;
    opt.dt = 0.01;
    // Identity pulse on qubit 1 rotates it; to isolate the ZZ phase,
    // drop the pulse and keep a bare idle layer instead.
    core::Schedule idle_sched;
    idle_sched.num_qubits = 2;
    core::Layer layer;
    layer.duration = 20.0;
    idle_sched.layers.push_back(layer);

    PulseScheduleSimulator sim(dev, pulse::PulseLibrary::gaussian(),
                               opt);
    sim.run(idle_sched, psi);

    // Expected relative phase on qubit 0: exp(-i*(E0-E1)*T) with
    // E0 = -lambda (|01>), E1 = +lambda (|11>), so delta = 2 lambda T.
    const auto &a = psi.amplitudes();
    const double phase =
        std::arg(a[1] / a[3]); // |01> vs |11>
    EXPECT_NEAR(std::remainder(phase - 2.0 * lambda * 20.0, kTwoPi),
                0.0, 1e-6);
}

TEST(PulseSimTest, VirtualLayersApplyExactly)
{
    auto dev = device(1, 2);
    ckt::QuantumCircuit c(2);
    c.sx(0);
    c.rz(0, 0.777);
    c.sx(0);
    auto sched = scheduleOf(c, dev);
    PulseSimOptions opt;
    opt.crosstalk_scale = 0.0;
    PulseScheduleSimulator sim(dev, pulse::PulseLibrary::gaussian(),
                               opt);
    StateVector actual = sim.run(sched);
    StateVector ideal = runIdealSchedule(sched);
    EXPECT_GT(ideal.fidelity(actual), 1.0 - 1e-6);
}

TEST(PulseSimTest, NormPreserved)
{
    auto dev = device(2, 3);
    ckt::QuantumCircuit c(6);
    for (int q = 0; q < 6; ++q)
        c.sx(q);
    c.rzx(0, 1, kPi / 2.0);
    c.rzx(4, 5, kPi / 2.0);
    auto sched = scheduleOf(c, dev);
    PulseScheduleSimulator sim(dev, pulse::PulseLibrary::gaussian());
    StateVector out = sim.run(sched);
    EXPECT_NEAR(out.norm(), 1.0, 1e-8);
}

TEST(PulseSimTest, HeterogeneousT1DecaysPerQubit)
{
    // A two-qubit device whose snapshot gives qubit 0 a short T1 and
    // leaves qubit 1 fully coherent: after an idle layer from |11>,
    // only qubit 0 loses population.
    graph::Topology topo = graph::lineTopology(2);
    dev::DeviceParams params;
    Rng rng(4);
    dev::Calibration calib =
        dev::Calibration::sampled(topo, params, rng);
    calib.t1[0] = 200.0; // ns, deliberately lossy
    calib.t2[0] = 200.0;
    const dev::Device dev(topo, calib);

    ckt::QuantumCircuit c(2);
    c.idle(0);
    c.idle(1);
    core::Schedule sched = scheduleOf(c, dev);

    PulseSimOptions opt;
    opt.dt = 0.1;
    opt.crosstalk_scale = 0.0;
    DensityMatrixScheduleSimulator sim(
        dev, pulse::PulseLibrary::gaussian(), opt);
    DensityMatrix rho(2);
    for (int q = 0; q < 2; ++q)
        rho.apply1Q(ckt::gateMatrix({ckt::GateKind::X, {0}}), q);
    sim.run(sched, rho);
    // Identity = Rx(2 pi) returns each qubit to |1> up to phase, but
    // qubit 0 decohered along the way.
    EXPECT_LT(rho.probabilityOne(0), 0.95);
    EXPECT_GT(rho.probabilityOne(1), 0.999);
}

TEST(PulseSimTest, ZzxScheduleRunsEndToEnd)
{
    auto dev = device(2, 3);
    ckt::QuantumCircuit c(6);
    for (int q = 0; q < 6; ++q)
        c.sx(q);
    auto sched = core::zzxSchedule(c, dev, core::GateDurations{});
    PulseScheduleSimulator sim(dev, pulse::PulseLibrary::gaussian());
    StateVector actual = sim.run(sched);
    StateVector ideal = runIdealSchedule(sched);
    // Gaussian identities do not suppress ZZ, but the run must be
    // well-formed and near-normalized.
    EXPECT_NEAR(actual.norm(), 1.0, 1e-8);
    EXPECT_GT(ideal.fidelity(actual), 0.5);
}

} // namespace
} // namespace qzz::sim
