#include "sim/transmon.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/units.h"
#include "linalg/expm.h"
#include "pulse/drag.h"
#include "pulse/library.h"

namespace qzz::sim {
namespace {

const la::CMatrix &
sxTarget()
{
    static const la::CMatrix m = la::expPauli(kPi / 4.0, 0.0, 0.0);
    return m;
}

pulse::PulseProgram
gaussianSx()
{
    return pulse::PulseLibrary::gaussian().get(pulse::PulseGate::SX);
}

pulse::PulseProgram
withDrag(const pulse::PulseProgram &p, double alpha)
{
    auto pair = pulse::applyDrag(p.x_a, p.y_a, alpha);
    return pulse::PulseProgram::singleQubit(pair.x, pair.y);
}

TEST(TransmonTest, LeakageVisibleWithoutDrag)
{
    TransmonConfig cfg;
    cfg.anharmonicity = -mhz(300.0);
    cfg.lambda = 0.0;
    const double infid =
        transmonCrosstalkInfidelity(gaussianSx(), sxTarget(), cfg);
    // A plain 20 ns Gaussian leaks noticeably at -300 MHz.
    EXPECT_GT(infid, 2e-6); // pure leakage, frame-calibrated
}

TEST(TransmonTest, DragReducesLeakage)
{
    TransmonConfig cfg;
    cfg.anharmonicity = -mhz(300.0);
    cfg.lambda = 0.0;
    const double bare =
        transmonCrosstalkInfidelity(gaussianSx(), sxTarget(), cfg);
    const double dragged = transmonCrosstalkInfidelity(
        withDrag(gaussianSx(), cfg.anharmonicity), sxTarget(), cfg);
    EXPECT_LT(dragged, bare / 5.0);
}

TEST(TransmonTest, SmallerAnharmonicityLeaksMore)
{
    TransmonConfig narrow;
    narrow.anharmonicity = -mhz(200.0);
    TransmonConfig wide;
    wide.anharmonicity = -mhz(400.0);
    const double i_narrow =
        transmonCrosstalkInfidelity(gaussianSx(), sxTarget(), narrow);
    const double i_wide =
        transmonCrosstalkInfidelity(gaussianSx(), sxTarget(), wide);
    EXPECT_GT(i_narrow, i_wide);
}

TEST(TransmonTest, CrosstalkAddsOnTopOfLeakage)
{
    TransmonConfig cfg;
    cfg.anharmonicity = -mhz(300.0);
    cfg.lambda = 0.0;
    const double base =
        transmonCrosstalkInfidelity(gaussianSx(), sxTarget(), cfg);
    cfg.lambda = mhz(1.0);
    const double with_zz =
        transmonCrosstalkInfidelity(gaussianSx(), sxTarget(), cfg);
    EXPECT_GT(with_zz, base);
}

TEST(TransmonTest, TwoLevelLimitMatchesQubitModel)
{
    // With large anharmonicity the 5-level result approaches the
    // ideal two-level gate: tiny infidelity at lambda = 0.  (The step
    // must resolve the fast anharmonic phases, hence dt = 0.001.)
    TransmonConfig cfg;
    cfg.anharmonicity = -mhz(3000.0);
    cfg.lambda = 0.0;
    const double infid = transmonCrosstalkInfidelity(
        gaussianSx(), sxTarget(), cfg, 0.001);
    EXPECT_LT(infid, 1e-5);
}

TEST(TransmonTest, ValidatesConfig)
{
    TransmonConfig cfg;
    cfg.levels = 2;
    EXPECT_THROW(
        transmonCrosstalkInfidelity(gaussianSx(), sxTarget(), cfg),
        UserError);
}

} // namespace
} // namespace qzz::sim
