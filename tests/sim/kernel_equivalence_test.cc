/**
 * @file
 * Optimized-kernel vs scalar-reference equivalence suite.
 *
 * The fused density-matrix kernels, the memoized step propagators,
 * and the phase-vector sweeps are performance rewrites that must not
 * move physics: every test here pins an optimized path against the
 * retained scalar reference on randomized states, across register
 * sizes that cover both the serial (n < 8) and the pool-split
 * (n >= 8) kernels.  Runs under ASan and TSan in CI (label
 * unit-service), so the shared-pool splits are raced deliberately.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/units.h"
#include "core/par_sched.h"
#include "graph/topologies.h"
#include "linalg/expm.h"
#include "sim/density_matrix.h"
#include "sim/drive_step.h"
#include "sim/lindblad.h"
#include "sim/pulse_sim.h"

namespace qzz::sim {
namespace {

using la::CMatrix;
using la::cplx;

CMatrix
randomMatrix(Rng &rng, size_t n)
{
    CMatrix m(n, n);
    for (size_t r = 0; r < n; ++r)
        for (size_t c = 0; c < n; ++c)
            m(r, c) = cplx{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    return m;
}

/** A random unitary via the propagator of a random Hermitian. */
CMatrix
randomUnitary(Rng &rng, size_t n)
{
    CMatrix h = randomMatrix(rng, n);
    h = h + h.dagger();
    return la::expmPropagator(h, 0.37);
}

DensityMatrix
randomState(Rng &rng, int n)
{
    // A random mixed state: conjugate a random diagonal by a random
    // unitary-ish matrix; normalization is irrelevant for kernel
    // equivalence, only the element values matter.
    DensityMatrix dm(n);
    CMatrix &rho = dm.matrix();
    rho = randomMatrix(rng, dm.dim());
    rho = rho * rho.dagger(); // Hermitian positive
    rho *= cplx{1.0 / rho.trace().real(), 0.0}; // unit trace, like a real rho
    return dm;
}

double
maxAbsDiff(const CMatrix &a, const CMatrix &b)
{
    double worst = 0.0;
    for (size_t r = 0; r < a.rows(); ++r)
        for (size_t c = 0; c < a.cols(); ++c)
            worst = std::max(worst, std::abs(a(r, c) - b(r, c)));
    return worst;
}

TEST(KernelEquivalence, Fused1QMatchesScalarAcrossSizes)
{
    Rng rng(11);
    for (int n = 2; n <= 8; ++n) {
        const CMatrix u = randomUnitary(rng, 2);
        for (int q = 0; q < n; ++q) {
            DensityMatrix a = randomState(rng, n);
            DensityMatrix b = a;
            a.apply1Q(u, q);
            b.apply1QScalar(u, q);
            EXPECT_LE(maxAbsDiff(a.matrix(), b.matrix()), 1e-14)
                << "n=" << n << " q=" << q;
        }
    }
}

TEST(KernelEquivalence, Fused2QMatchesScalarAcrossPairs)
{
    Rng rng(12);
    for (int n = 2; n <= 8; ++n) {
        const CMatrix u = randomUnitary(rng, 4);
        for (int qa = 0; qa < n; ++qa)
            for (int qb = 0; qb < n; ++qb) {
                if (qa == qb)
                    continue;
                DensityMatrix a = randomState(rng, n);
                DensityMatrix b = a;
                a.apply2Q(u, qa, qb);
                b.apply2QScalar(u, qa, qb);
                EXPECT_LE(maxAbsDiff(a.matrix(), b.matrix()), 1e-14)
                    << "n=" << n << " pair=(" << qa << "," << qb << ")";
            }
    }
}

TEST(KernelEquivalence, FusedDecoherenceMatchesSequentialChannels)
{
    Rng rng(13);
    for (int n = 2; n <= 8; ++n) {
        std::vector<double> gamma(size_t(n), 0.0);
        std::vector<double> keep(size_t(n), 1.0);
        for (int q = 0; q < n; ++q) {
            // Mix lossy, dephasing-only, damping-only, and coherent
            // qubits so every fused-branch combination is exercised.
            switch (q % 4) {
            case 0:
                gamma[size_t(q)] = rng.uniform(0.0, 0.2);
                keep[size_t(q)] = rng.uniform(0.8, 1.0);
                break;
            case 1:
                gamma[size_t(q)] = 0.0;
                keep[size_t(q)] = rng.uniform(0.8, 1.0);
                break;
            case 2:
                gamma[size_t(q)] = rng.uniform(0.0, 0.2);
                keep[size_t(q)] = 1.0;
                break;
            default:
                gamma[size_t(q)] = 0.0;
                keep[size_t(q)] = 1.0;
                break;
            }
        }
        DensityMatrix a = randomState(rng, n);
        DensityMatrix b = a;
        a.applyDecoherence(gamma, keep);
        b.applyDecoherenceScalar(gamma, keep);
        EXPECT_LE(maxAbsDiff(a.matrix(), b.matrix()), 1e-14) << "n=" << n;
    }
}

TEST(KernelEquivalence, PhaseVectorMatchesDiagonalPhase)
{
    Rng rng(14);
    for (int n = 2; n <= 8; ++n) {
        std::vector<double> energies(size_t(1) << n);
        for (double &e : energies)
            e = rng.uniform(-5.0, 5.0);
        const double dt = 0.087;
        DensityMatrix a = randomState(rng, n);
        DensityMatrix b = a;
        a.applyPhaseVector(phaseVector(energies, dt));
        b.applyDiagonalPhase(energies, dt);
        // Not bit-identical (different trig evaluation), but the
        // phases agree to ~1 ulp per element.
        EXPECT_LE(maxAbsDiff(a.matrix(), b.matrix()), 1e-13) << "n=" << n;
    }
}

TEST(KernelEquivalence, StateVectorPhaseVectorMatchesDiagonalPhase)
{
    Rng rng(15);
    const int n = 6;
    std::vector<double> energies(size_t(1) << n);
    for (double &e : energies)
        e = rng.uniform(-5.0, 5.0);
    StateVector a(n), b(n);
    for (size_t k = 0; k < a.dim(); ++k)
        a.amplitudes()[k] = b.amplitudes()[k] =
            cplx{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    const double dt = 0.059;
    a.applyPhaseVector(phaseVector(energies, dt));
    b.applyDiagonalPhase(energies, dt);
    for (size_t k = 0; k < a.dim(); ++k)
        EXPECT_LE(std::abs(a.amplitudes()[k] - b.amplitudes()[k]), 1e-13);
}

TEST(KernelEquivalence, FixedSizePropagatorMatchesHeapExpm)
{
    Rng rng(16);
    for (int trial = 0; trial < 20; ++trial) {
        CMatrix h = randomMatrix(rng, 4);
        h = h + h.dagger();
        // Cover both the unscaled and the scaled-and-squared branch.
        const double t = trial % 2 == 0 ? 0.05 : 9.0;
        const CMatrix want = la::expmPropagator(h, t);
        la::Mat4 got;
        la::expmPropagator4(la::toMat4(h), t, got);
        for (size_t i = 0; i < 16; ++i)
            EXPECT_LE(std::abs(got[i] - want(i / 4, i % 4)), 1e-13);
    }
}

TEST(KernelEquivalence, MemoizedPropagatorsMatchDirectComputation)
{
    const pulse::PulseLibrary lib = pulse::PulseLibrary::gaussian();
    const double dt = 0.1;
    StepPropagatorMemo memo;
    const auto &sx = lib.get(pulse::PulseGate::SX);
    const auto &rzx = lib.get(pulse::PulseGate::RZX);
    for (size_t s = 0; s < 40; ++s) {
        const double t_mid = (double(s) + 0.5) * dt;
        la::Mat2 m2;
        drive1QStep(sx, t_mid, dt, m2);
        const la::Mat2 &c2 = memo.get1Q(sx, pulse::PulseGate::SX, s, dt);
        for (size_t i = 0; i < 4; ++i)
            EXPECT_EQ(m2[i], c2[i]);
        la::Mat4 m4;
        drive2QStep(rzx, t_mid, dt, m4);
        const la::Mat4 &c4 = memo.get2Q(rzx, pulse::PulseGate::RZX, s, dt);
        for (size_t i = 0; i < 16; ++i)
            EXPECT_EQ(m4[i], c4[i]);
    }
    // The second pass over the same steps must hit the cache.
    const auto misses = memo.misses();
    (void)memo.get1Q(sx, pulse::PulseGate::SX, 7, dt);
    (void)memo.get2Q(rzx, pulse::PulseGate::RZX, 7, dt);
    EXPECT_EQ(memo.misses(), misses);
    // A different dt invalidates.
    (void)memo.get1Q(sx, pulse::PulseGate::SX, 7, dt / 2.0);
    EXPECT_EQ(memo.misses(), misses + 1);
}

dev::Device
gridDevice(int rows, int cols, uint64_t seed = 7)
{
    Rng rng(seed);
    return dev::Device(graph::gridTopology(rows, cols),
                       dev::DeviceParams{}, rng);
}

core::Schedule
fig23StyleSchedule(const dev::Device &dev, int n)
{
    ckt::QuantumCircuit c(n);
    for (int rep = 0; rep < 3; ++rep) {
        for (int q = 0; q < n; ++q)
            c.sx(q);
        c.rzx(0, 1, kPi / 2.0);
        if (n >= 4)
            c.rzx(2, 3, kPi / 2.0);
    }
    return core::parSchedule(c, dev, core::GateDurations{});
}

TEST(KernelEquivalence, DensitySimulatorMatchesScalarReferencePath)
{
    const auto dev = gridDevice(2, 3);
    const auto sched = fig23StyleSchedule(dev, 6);
    const auto lib = pulse::PulseLibrary::gaussian();

    PulseSimOptions fast;
    fast.dt = 0.1;
    PulseSimOptions ref = fast;
    ref.scalar_reference = true;

    DensityMatrix a =
        DensityMatrixScheduleSimulator(dev, lib, fast).run(sched);
    DensityMatrix b =
        DensityMatrixScheduleSimulator(dev, lib, ref).run(sched);
    // Memoized propagators are exact; only the phase sweeps differ at
    // the last ulp per step, so the paths track each other to ~1e-12
    // over a thousand steps.
    EXPECT_LE(maxAbsDiff(a.matrix(), b.matrix()), 1e-11);
    EXPECT_NEAR(a.trace(), 1.0, 1e-9);
}

TEST(KernelEquivalence, StateVectorSimulatorMatchesScalarReferencePath)
{
    const auto dev = gridDevice(2, 3);
    const auto sched = fig23StyleSchedule(dev, 6);
    const auto lib = pulse::PulseLibrary::gaussian();

    PulseSimOptions fast;
    fast.dt = 0.1;
    PulseSimOptions ref = fast;
    ref.scalar_reference = true;

    StateVector a = PulseScheduleSimulator(dev, lib, fast).run(sched);
    StateVector b = PulseScheduleSimulator(dev, lib, ref).run(sched);
    EXPECT_GT(a.fidelity(b), 1.0 - 1e-10);
    for (size_t k = 0; k < a.dim(); ++k)
        EXPECT_LE(std::abs(a.amplitudes()[k] - b.amplitudes()[k]), 1e-10);
}

TEST(KernelEquivalence, DecoherentSimulatorGoldenFidelity)
{
    // Fig. 23-style golden: a lossy device run through both paths
    // must land on the same |00..0> fidelity.  Guards the fused
    // decoherence + unmerged half-step branch end to end.
    graph::Topology topo = graph::gridTopology(2, 2);
    dev::DeviceParams params;
    Rng rng(4);
    dev::Calibration calib = dev::Calibration::sampled(topo, params, rng);
    for (int q = 0; q < 4; ++q) {
        calib.t1[size_t(q)] = 5000.0;
        calib.t2[size_t(q)] = 3000.0;
    }
    const dev::Device dev(topo, calib);
    const auto sched = fig23StyleSchedule(dev, 4);
    const auto lib = pulse::PulseLibrary::gaussian();

    PulseSimOptions fast;
    fast.dt = 0.1;
    PulseSimOptions ref = fast;
    ref.scalar_reference = true;

    DensityMatrix a =
        DensityMatrixScheduleSimulator(dev, lib, fast).run(sched);
    DensityMatrix b =
        DensityMatrixScheduleSimulator(dev, lib, ref).run(sched);
    StateVector zero(4);
    EXPECT_NEAR(a.expectationPure(zero), b.expectationPure(zero), 1e-10);
    EXPECT_LE(maxAbsDiff(a.matrix(), b.matrix()), 1e-11);
}

TEST(KernelEquivalence, PoolSplitKernelsMatchAtEightQubits)
{
    // n = 8 crosses the parallelFor threshold (dim 256): the fused
    // kernels split across the shared pool.  Equivalence here plus
    // the TSan CI leg checks both correctness and data-race freedom
    // of the block partitioning.
    Rng rng(17);
    const int n = 8;
    const CMatrix u2 = randomUnitary(rng, 2);
    const CMatrix u4 = randomUnitary(rng, 4);
    DensityMatrix a = randomState(rng, n);
    DensityMatrix b = a;

    a.apply1Q(u2, 3);
    b.apply1QScalar(u2, 3);
    a.apply2Q(u4, 1, 6);
    b.apply2QScalar(u4, 1, 6);
    std::vector<double> gamma(size_t(n), 0.01), keep(size_t(n), 0.995);
    a.applyDecoherence(gamma, keep);
    b.applyDecoherenceScalar(gamma, keep);
    EXPECT_LE(maxAbsDiff(a.matrix(), b.matrix()), 1e-13);
}

} // namespace
} // namespace qzz::sim
