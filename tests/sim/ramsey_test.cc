#include "sim/ramsey.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/units.h"
#include "core/dcg.h"

namespace qzz::sim {
namespace {

RamseyConfig
baseConfig(const pulse::PulseLibrary &lib)
{
    RamseyConfig cfg;
    // lambda/2pi = 50 kHz per coupling -> measured ZZ ~ 200 kHz.
    cfg.lambda12 = khz(50.0);
    cfg.lambda23 = khz(50.0);
    cfg.library = &lib;
    cfg.segments = 300;
    cfg.dt = 0.02;
    return cfg;
}

TEST(RamseyTest, TraceOscillatesNearDetuning)
{
    static const pulse::PulseLibrary lib =
        pulse::PulseLibrary::gaussian();
    RamseyConfig cfg = baseConfig(lib);
    RamseyTrace trace = runRamsey(cfg);
    ASSERT_EQ(trace.p1.size(), size_t(cfg.segments) + 1);
    // Population stays in [0, 1].
    for (double p : trace.p1) {
        EXPECT_GE(p, -1e-9);
        EXPECT_LE(p, 1.0 + 1e-9);
    }
    // Frequency near the 1 MHz software detuning (shifted by ZZ).
    EXPECT_NEAR(trace.frequency, 1e-3, 0.3e-3);
}

TEST(RamseyTest, BaselineMeasuresFullZzStrength)
{
    static const pulse::PulseLibrary lib =
        pulse::PulseLibrary::gaussian();
    RamseyConfig cfg = baseConfig(lib);
    cfg.circuit = RamseyCircuit::A;
    ZzMeasurement zz = measureEffectiveZz(cfg, true, false);
    // H = lambda sz sz shifts the Q2 frequency by +-2 lambda, so the
    // difference is 4 lambda / 2 pi = 4 * 50 kHz = 200 kHz.
    EXPECT_NEAR(zz.zz_khz, 200.0, 20.0);
}

TEST(RamseyTest, BothNeighborsDoubleTheShift)
{
    static const pulse::PulseLibrary lib =
        pulse::PulseLibrary::gaussian();
    RamseyConfig cfg = baseConfig(lib);
    ZzMeasurement zz = measureEffectiveZz(cfg, true, true);
    EXPECT_NEAR(zz.zz_khz, 400.0, 40.0);
}

TEST(RamseyTest, DcgIdentityOnQ2SuppressesZz)
{
    static const pulse::PulseLibrary lib = core::dcgLibrary();
    RamseyConfig cfg = baseConfig(lib);
    cfg.circuit = RamseyCircuit::B;
    ZzMeasurement zz = measureEffectiveZz(cfg, true, false);
    // The paper's headline: ~200 kHz -> < 11 kHz.
    EXPECT_LT(zz.zz_khz, 11.0);
}

TEST(RamseyTest, DcgIdentityOnNeighborsSuppressesZz)
{
    static const pulse::PulseLibrary lib = core::dcgLibrary();
    RamseyConfig cfg = baseConfig(lib);
    cfg.circuit = RamseyCircuit::C;
    ZzMeasurement zz = measureEffectiveZz(cfg, true, true);
    EXPECT_LT(zz.zz_khz, 22.0);
}

TEST(RamseyTest, RequiresLibrary)
{
    RamseyConfig cfg;
    cfg.segments = 100;
    EXPECT_THROW(runRamsey(cfg), UserError);
}

} // namespace
} // namespace qzz::sim
