#include "sim/state_vector.h"

#include <gtest/gtest.h>

#include "circuit/gate.h"
#include "common/units.h"
#include "linalg/fidelity.h"

namespace qzz::sim {
namespace {

TEST(StateVectorTest, StartsInZeroState)
{
    StateVector psi(3);
    EXPECT_EQ(psi.dim(), 8u);
    EXPECT_NEAR(std::abs(psi.amplitudes()[0]), 1.0, 1e-15);
    EXPECT_NEAR(psi.norm(), 1.0, 1e-15);
}

TEST(StateVectorTest, Apply1QMatchesEmbedding)
{
    // Apply H to qubit 1 of 3 and compare against the dense operator.
    StateVector psi(3);
    psi.apply1Q(ckt::gateMatrix({ckt::GateKind::H, {0}}), 1);
    la::CMatrix full = la::embed(
        ckt::gateMatrix({ckt::GateKind::H, {0}}), {1}, 3);
    la::CVector expect(8, 0.0);
    expect[0] = 1.0;
    expect = full * expect;
    for (size_t k = 0; k < 8; ++k)
        EXPECT_NEAR(std::abs(psi.amplitudes()[k] - expect[k]), 0.0,
                    1e-12);
}

TEST(StateVectorTest, Apply2QMatchesEmbeddingBothOrders)
{
    for (auto [hi, lo] : {std::pair{0, 2}, {2, 0}}) {
        StateVector psi(3);
        psi.apply1Q(ckt::gateMatrix({ckt::GateKind::H, {0}}), hi);
        psi.apply2Q(ckt::gateMatrix({ckt::GateKind::CX, {0, 1}}), hi,
                    lo);

        la::CVector expect(8, 0.0);
        expect[0] = 1.0;
        expect = la::embed(ckt::gateMatrix({ckt::GateKind::H, {0}}),
                           {hi}, 3) *
                 expect;
        expect = la::embed(ckt::gateMatrix({ckt::GateKind::CX, {0, 1}}),
                           {hi, lo}, 3) *
                 expect;
        for (size_t k = 0; k < 8; ++k)
            EXPECT_NEAR(std::abs(psi.amplitudes()[k] - expect[k]), 0.0,
                        1e-12)
                << "hi=" << hi << " k=" << k;
    }
}

TEST(StateVectorTest, BellStateProbabilities)
{
    StateVector psi(2);
    psi.apply1Q(ckt::gateMatrix({ckt::GateKind::H, {0}}), 0);
    psi.apply2Q(ckt::gateMatrix({ckt::GateKind::CX, {0, 1}}), 0, 1);
    EXPECT_NEAR(psi.probabilityOne(0), 0.5, 1e-12);
    EXPECT_NEAR(psi.probabilityOne(1), 0.5, 1e-12);
    EXPECT_NEAR(psi.norm(), 1.0, 1e-12);
}

TEST(StateVectorTest, RzPhases)
{
    StateVector psi(1);
    psi.apply1Q(ckt::gateMatrix({ckt::GateKind::H, {0}}), 0);
    psi.applyRz(0, kPi); // |+> -> |->
    psi.apply1Q(ckt::gateMatrix({ckt::GateKind::H, {0}}), 0);
    EXPECT_NEAR(psi.probabilityOne(0), 1.0, 1e-12);
}

TEST(StateVectorTest, DiagonalPhaseMatchesRz)
{
    // ZZ table for a single edge reproduces an RZZ rotation.
    StateVector a(2), b(2);
    a.apply1Q(ckt::gateMatrix({ckt::GateKind::H, {0}}), 0);
    a.apply1Q(ckt::gateMatrix({ckt::GateKind::H, {0}}), 1);
    b = a;
    const double lambda = 0.01;
    const double t = 12.0;
    auto table = zzEnergyTable(2, {{0, 1}}, {lambda});
    a.applyDiagonalPhase(table, t);
    b.apply2Q(ckt::gateMatrix(
                  {ckt::GateKind::RZZ, {0, 1}, {2.0 * lambda * t}}),
              0, 1);
    EXPECT_NEAR(a.fidelity(b), 1.0, 1e-12);
}

TEST(StateVectorTest, ZzEnergyTableValues)
{
    auto table = zzEnergyTable(2, {{0, 1}}, {0.5});
    // |00>: +, |01>: -, |10>: -, |11>: +.
    EXPECT_DOUBLE_EQ(table[0], 0.5);
    EXPECT_DOUBLE_EQ(table[1], -0.5);
    EXPECT_DOUBLE_EQ(table[2], -0.5);
    EXPECT_DOUBLE_EQ(table[3], 0.5);
}

TEST(StateVectorTest, OverlapAndFidelity)
{
    StateVector a(2), b(2);
    EXPECT_NEAR(std::abs(a.overlap(b)), 1.0, 1e-15);
    b.apply1Q(ckt::gateMatrix({ckt::GateKind::X, {0}}), 0);
    EXPECT_NEAR(a.fidelity(b), 0.0, 1e-15);
}

TEST(StateVectorTest, UnitaryPreservesNorm)
{
    StateVector psi(4);
    for (int q = 0; q < 4; ++q)
        psi.apply1Q(ckt::gateMatrix({ckt::GateKind::H, {0}}), q);
    psi.apply2Q(
        ckt::gateMatrix({ckt::GateKind::RZX, {0, 1}, {kPi / 2.0}}), 1,
        3);
    EXPECT_NEAR(psi.norm(), 1.0, 1e-12);
}

} // namespace
} // namespace qzz::sim
