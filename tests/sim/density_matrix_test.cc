#include "sim/density_matrix.h"

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/gate.h"
#include "common/error.h"
#include "common/units.h"

namespace qzz::sim {
namespace {

TEST(DensityMatrixTest, PureStateRoundTrip)
{
    StateVector psi(2);
    psi.apply1Q(ckt::gateMatrix({ckt::GateKind::H, {0}}), 0);
    DensityMatrix rho = DensityMatrix::fromPure(psi);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
    EXPECT_NEAR(rho.expectationPure(psi), 1.0, 1e-12);
}

TEST(DensityMatrixTest, UnitaryConjugationMatchesStateVector)
{
    StateVector psi(2);
    DensityMatrix rho(2);
    auto h = ckt::gateMatrix({ckt::GateKind::H, {0}});
    auto cx = ckt::gateMatrix({ckt::GateKind::CX, {0, 1}});
    psi.apply1Q(h, 0);
    psi.apply2Q(cx, 0, 1);
    rho.apply1Q(h, 0);
    rho.apply2Q(cx, 0, 1);
    EXPECT_NEAR(rho.expectationPure(psi), 1.0, 1e-12);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
}

TEST(DensityMatrixTest, RzMatchesStateVector)
{
    StateVector psi(1);
    DensityMatrix rho(1);
    auto h = ckt::gateMatrix({ckt::GateKind::H, {0}});
    psi.apply1Q(h, 0);
    rho.apply1Q(h, 0);
    psi.applyRz(0, 0.9);
    rho.applyRz(0, 0.9);
    EXPECT_NEAR(rho.expectationPure(psi), 1.0, 1e-12);
}

TEST(DensityMatrixTest, DiagonalPhaseMatchesStateVector)
{
    StateVector psi(2);
    DensityMatrix rho(2);
    auto h = ckt::gateMatrix({ckt::GateKind::H, {0}});
    for (int q = 0; q < 2; ++q) {
        psi.apply1Q(h, q);
        rho.apply1Q(h, q);
    }
    auto table = zzEnergyTable(2, {{0, 1}}, {khz(300.0)});
    psi.applyDiagonalPhase(table, 15.0);
    rho.applyDiagonalPhase(table, 15.0);
    EXPECT_NEAR(rho.expectationPure(psi), 1.0, 1e-12);
}

TEST(DensityMatrixTest, AmplitudeDampingDecaysExcitedState)
{
    DensityMatrix rho(1);
    rho.apply1Q(ckt::gateMatrix({ckt::GateKind::X, {0}}), 0);
    EXPECT_NEAR(rho.probabilityOne(0), 1.0, 1e-12);
    const double gamma = 0.25;
    rho.applyAmplitudeDamping(0, gamma);
    EXPECT_NEAR(rho.probabilityOne(0), 0.75, 1e-12);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
}

TEST(DensityMatrixTest, RepeatedDampingIsExponential)
{
    DensityMatrix rho(1);
    rho.apply1Q(ckt::gateMatrix({ckt::GateKind::X, {0}}), 0);
    const double dt = 10.0, t1 = 100.0;
    const double gamma = 1.0 - std::exp(-dt / t1);
    for (int i = 0; i < 10; ++i)
        rho.applyAmplitudeDamping(0, gamma);
    EXPECT_NEAR(rho.probabilityOne(0), std::exp(-100.0 / t1), 1e-9);
}

TEST(DensityMatrixTest, DephasingKillsCoherenceOnly)
{
    DensityMatrix rho(1);
    rho.apply1Q(ckt::gateMatrix({ckt::GateKind::H, {0}}), 0);
    rho.applyDephasing(0, 0.5);
    EXPECT_NEAR(rho.probabilityOne(0), 0.5, 1e-12); // populations kept
    EXPECT_NEAR(std::abs(rho.matrix()(0, 1)), 0.25, 1e-12);
}

TEST(DensityMatrixTest, DampingOnOneQubitLeavesOthersAlone)
{
    DensityMatrix rho(2);
    rho.apply1Q(ckt::gateMatrix({ckt::GateKind::X, {0}}), 0);
    rho.apply1Q(ckt::gateMatrix({ckt::GateKind::X, {0}}), 1);
    rho.applyAmplitudeDamping(0, 0.5);
    EXPECT_NEAR(rho.probabilityOne(0), 0.5, 1e-12);
    EXPECT_NEAR(rho.probabilityOne(1), 1.0, 1e-12);
}

TEST(DensityMatrixTest, PerQubitDecoherenceSweep)
{
    // Heterogeneous rates: qubit 0 damps, qubit 1 only dephases,
    // qubit 2 is untouched — in one sweep.
    DensityMatrix rho(3);
    for (int q = 0; q < 3; ++q)
        rho.apply1Q(ckt::gateMatrix({ckt::GateKind::H, {0}}), q);
    rho.applyDecoherence({0.5, 0.0, 0.0}, {1.0, 0.5, 1.0});

    DensityMatrix expected(3);
    for (int q = 0; q < 3; ++q)
        expected.apply1Q(ckt::gateMatrix({ckt::GateKind::H, {0}}), q);
    expected.applyAmplitudeDamping(0, 0.5);
    expected.applyDephasing(1, 0.5);
    for (size_t r = 0; r < rho.dim(); ++r)
        for (size_t c = 0; c < rho.dim(); ++c)
            EXPECT_NEAR(std::abs(rho.matrix()(r, c) -
                                 expected.matrix()(r, c)),
                        0.0, 1e-14);

    EXPECT_THROW(rho.applyDecoherence({0.5}, {1.0}), UserError);
}

TEST(DensityMatrixTest, MixedStateExpectation)
{
    DensityMatrix rho(1);
    rho.apply1Q(ckt::gateMatrix({ckt::GateKind::H, {0}}), 0);
    rho.applyDephasing(0, 0.0); // fully mixed in x-basis
    StateVector plus(1);
    plus.apply1Q(ckt::gateMatrix({ckt::GateKind::H, {0}}), 0);
    EXPECT_NEAR(rho.expectationPure(plus), 0.5, 1e-12);
}

} // namespace
} // namespace qzz::sim
