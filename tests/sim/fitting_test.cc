#include "sim/fitting.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/units.h"

namespace qzz::sim {
namespace {

std::pair<std::vector<double>, std::vector<double>>
makeSinusoid(double f, double amp, double phase, double offset,
             double t_max, int n)
{
    std::vector<double> t, y;
    for (int i = 0; i < n; ++i) {
        const double ti = t_max * double(i) / double(n - 1);
        t.push_back(ti);
        y.push_back(offset + amp * std::cos(kTwoPi * f * ti + phase));
    }
    return {t, y};
}

TEST(FittingTest, RecoversFrequencyExactly)
{
    auto [t, y] = makeSinusoid(1e-3, 0.5, 0.3, 0.5, 8000.0, 400);
    auto fit = fitSinusoid(t, y, 0.0, 3e-3);
    EXPECT_NEAR(fit.frequency, 1e-3, 1e-8);
    EXPECT_NEAR(fit.amplitude, 0.5, 1e-6);
    EXPECT_NEAR(fit.offset, 0.5, 1e-6);
    EXPECT_LT(fit.rms_residual, 1e-6);
}

TEST(FittingTest, ResolvesCloseFrequencies)
{
    // Two fits 10 kHz apart (in GHz units: 1e-5) must be separable.
    auto [t1, y1] = makeSinusoid(1.00e-3, 0.5, 0.0, 0.5, 50000.0, 500);
    auto [t2, y2] = makeSinusoid(1.01e-3, 0.5, 0.0, 0.5, 50000.0, 500);
    auto f1 = fitSinusoid(t1, y1, 0.0, 3e-3);
    auto f2 = fitSinusoid(t2, y2, 0.0, 3e-3);
    EXPECT_NEAR((f2.frequency - f1.frequency) * 1e6, 10.0, 0.5);
}

TEST(FittingTest, PhaseRecovered)
{
    auto [t, y] = makeSinusoid(2e-3, 1.0, 1.1, 0.0, 5000.0, 300);
    auto fit = fitSinusoid(t, y, 1e-3, 3e-3);
    EXPECT_NEAR(std::remainder(fit.phase - 1.1, kTwoPi), 0.0, 1e-4);
}

TEST(FittingTest, HandlesZeroFrequency)
{
    std::vector<double> t, y;
    for (int i = 0; i < 100; ++i) {
        t.push_back(double(i));
        y.push_back(0.7);
    }
    auto fit = fitSinusoid(t, y, 0.0, 1e-2);
    EXPECT_NEAR(fit.amplitude * std::cos(fit.phase) + fit.offset, 0.7,
                1e-6);
    EXPECT_LT(fit.rms_residual, 1e-9);
}

TEST(FittingTest, RobustToSmallModelMismatch)
{
    auto [t, y] = makeSinusoid(1e-3, 0.5, 0.0, 0.5, 10000.0, 400);
    // Inject a slow quadratic drift.
    for (size_t i = 0; i < y.size(); ++i)
        y[i] += 1e-3 * (t[i] / 10000.0) * (t[i] / 10000.0);
    auto fit = fitSinusoid(t, y, 0.0, 3e-3);
    EXPECT_NEAR(fit.frequency, 1e-3, 1e-6);
}

TEST(FittingTest, InputValidation)
{
    std::vector<double> t{1, 2, 3}, y{1, 2, 3};
    EXPECT_THROW(fitSinusoid(t, y, 0.0, 1.0), UserError);
    auto [tt, yy] = makeSinusoid(1e-3, 1, 0, 0, 100.0, 50);
    EXPECT_THROW(fitSinusoid(tt, yy, 1.0, 0.5), UserError);
}

} // namespace
} // namespace qzz::sim
