/**
 * @file
 * Calibration snapshot unit tests: factory generators, validation,
 * the lossless JSON round trip, atomic file persistence, and the
 * uniform-shim equivalence with the historical Device constructors.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <random>

#include "common/error.h"
#include "common/units.h"
#include "device/calibration.h"
#include "device/device.h"
#include "graph/topologies.h"

namespace qzz::dev {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

graph::Topology
grid23()
{
    return graph::gridTopology(2, 3);
}

TEST(CalibrationTest, SampledMatchesHistoricalDeviceSampling)
{
    // The sampled() factory must consume the rng exactly like the
    // historical Device(topo, params, rng) constructor, so devices
    // built either way are bit-identical.
    Rng rng_a(7), rng_b(7);
    const Device direct(grid23(), DeviceParams{}, rng_a);
    const Calibration calib =
        Calibration::sampled(grid23(), DeviceParams{}, rng_b);
    ASSERT_EQ(calib.zz.size(), direct.couplings().size());
    for (size_t e = 0; e < calib.zz.size(); ++e)
        EXPECT_EQ(calib.zz[e], direct.couplings()[e]);
    EXPECT_EQ(calib.epoch, 0u);
    EXPECT_EQ(calib.num_qubits, 6);
}

TEST(CalibrationTest, UniformSnapshotDeviceEqualsShimDevice)
{
    Rng rng(11);
    const Device shim(grid23(), DeviceParams{}, rng);
    const Device snap(grid23(),
                      Calibration::uniform(grid23(), DeviceParams{},
                                           shim.couplings()));
    EXPECT_EQ(snap.couplings(), shim.couplings());
    for (int q = 0; q < snap.numQubits(); ++q) {
        EXPECT_EQ(snap.t1(q), shim.t1(q));
        EXPECT_EQ(snap.t2(q), shim.t2(q));
        EXPECT_EQ(snap.anharmonicity(q), shim.anharmonicity(q));
    }
    EXPECT_EQ(snap.calibration().epoch, shim.calibration().epoch);
}

TEST(CalibrationTest, JitteredIsHeterogeneousAndPhysical)
{
    DeviceParams params;
    params.t1 = us(100.0);
    params.t2 = us(80.0);
    Rng rng(3);
    CalibrationJitter jitter;
    jitter.zz_rel = 0.1;
    const Calibration calib =
        Calibration::jittered(grid23(), params, jitter, rng);
    calib.validateFor(grid23());

    bool t1_varies = false;
    for (size_t q = 1; q < calib.t1.size(); ++q)
        t1_varies = t1_varies || calib.t1[q] != calib.t1[0];
    EXPECT_TRUE(t1_varies);
    for (size_t q = 0; q < calib.t1.size(); ++q) {
        EXPECT_GT(calib.t1[q], 0.0);
        EXPECT_LE(calib.t2[q], 2.0 * calib.t1[q] * (1.0 + 1e-12));
        EXPECT_LT(calib.anharmonicity[q], 0.0); // sign preserved
    }
}

TEST(CalibrationTest, JitterKeepsInfiniteCoherenceInfinite)
{
    Rng rng(5);
    const Calibration calib = Calibration::jittered(
        grid23(), DeviceParams{}, CalibrationJitter{}, rng);
    for (double t : calib.t1)
        EXPECT_TRUE(std::isinf(t));
    for (double t : calib.t2)
        EXPECT_TRUE(std::isinf(t));
}

TEST(CalibrationTest, DriftBumpsEpochAndPerturbsFields)
{
    DeviceParams params;
    params.t1 = us(120.0);
    params.t2 = us(90.0);
    Rng rng(9);
    const Calibration base =
        Calibration::sampled(grid23(), params, rng);
    Rng drift_rng(10);
    const Calibration next = base.drifted({}, drift_rng);
    EXPECT_EQ(next.epoch, base.epoch + 1);
    EXPECT_NE(next.id, base.id);
    EXPECT_NE(next.zz, base.zz);
    EXPECT_NE(next.t1, base.t1);
    next.validateFor(grid23());

    Rng drift_rng2(11);
    const Calibration third = next.drifted({}, drift_rng2);
    EXPECT_EQ(third.epoch, 2u);
}

TEST(CalibrationTest, JsonRoundTripIsLossless)
{
    // Awkward doubles (non-terminating binary fractions, tiny and
    // huge magnitudes, infinities) must survive the text round trip
    // bit-exactly: the writer uses max_digits10 and encodes
    // infinities as strings.
    DeviceParams params;
    params.t1 = us(123.456789);
    params.t2 = us(98.7654321);
    Rng rng(17);
    Calibration calib = Calibration::jittered(
        grid23(), params, CalibrationJitter{0.1, 0.1, 0.05, 0.2}, rng);
    calib.epoch = 41;
    calib.id = "round \\ \"trip\"";
    calib.t1[0] = 1.0 / 3.0;
    calib.t2[0] = 2.0 / 3.0;
    calib.t1[1] = kInf;
    calib.t2[1] = kInf;
    calib.zz[0] = 1e-300;
    calib.anharmonicity[2] = -1.234567890123456789e2;

    const std::string text = calibrationJsonString(calib);
    std::string error;
    const auto back = readCalibrationJson(text, &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ(*back, calib);
    // Serialization is deterministic, so the round trip is a fixed
    // point at the byte level too.
    EXPECT_EQ(calibrationJsonString(*back), text);
}

TEST(CalibrationTest, DampingOnlyCoherenceIsAccepted)
{
    // Historical behavior: finite T1 with the default infinite T2
    // (pure relaxation, no dephasing channel) must construct — the
    // T2 <= 2 T1 physicality bound only applies to finite T2.
    DeviceParams params;
    params.t1 = us(100.0);
    Rng rng(13);
    const Device device(grid23(), params, rng);
    EXPECT_EQ(device.t1(0), us(100.0));
    EXPECT_TRUE(std::isinf(device.t2(0)));
    EXPECT_NO_THROW(
        Calibration::jittered(grid23(), params, {}, rng));
}

TEST(CalibrationTest, ControlCharacterIdRoundTrips)
{
    Rng rng(19);
    Calibration calib =
        Calibration::sampled(grid23(), DeviceParams{}, rng);
    calib.id = "run\n2026\t\x01end";
    const std::string text = calibrationJsonString(calib);
    // One-line-JSON invariant: exactly the trailing newline.
    EXPECT_EQ(text.find('\n'), text.size() - 1);
    std::string error;
    const auto back = readCalibrationJson(text, &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ(back->id, calib.id);
}

TEST(CalibrationTest, JsonRejectsMalformedInput)
{
    Rng rng(1);
    const Calibration calib =
        Calibration::sampled(grid23(), DeviceParams{}, rng);
    const std::string text = calibrationJsonString(calib);

    std::string error;
    EXPECT_FALSE(readCalibrationJson("", &error).has_value());
    EXPECT_FALSE(readCalibrationJson("{}", &error).has_value());
    EXPECT_FALSE(
        readCalibrationJson(text.substr(0, text.size() / 2), &error)
            .has_value());
    EXPECT_FALSE(
        readCalibrationJson(text + " trailing", &error).has_value());
    EXPECT_FALSE(readCalibrationJson("{\"qzzcalib\":999}", &error)
                     .has_value());
    // Inconsistent sizes fail validation on load.
    std::string broken = text;
    const auto pos = broken.find("\"t1\":[");
    ASSERT_NE(pos, std::string::npos);
    broken.insert(pos + 6, "1.0,");
    EXPECT_FALSE(readCalibrationJson(broken, &error).has_value());
}

TEST(CalibrationTest, JsonRejectsEveryTruncation)
{
    // A torn write (e.g. a non-atomic copy into a watch directory)
    // must never parse as a partial snapshot: every proper prefix of
    // a valid document fails, and the error carries a byte offset so
    // the truncation point is diagnosable.
    Rng rng(3);
    const Calibration calib =
        Calibration::sampled(grid23(), DeviceParams{}, rng);
    std::string text = calibrationJsonString(calib);
    while (!text.empty() && text.back() == '\n')
        text.pop_back();

    for (size_t len = 0; len < text.size(); ++len) {
        std::string error;
        const auto got =
            readCalibrationJson(text.substr(0, len), &error);
        ASSERT_FALSE(got.has_value())
            << "prefix of length " << len << " parsed";
        EXPECT_NE(error.find("at byte"), std::string::npos)
            << "no byte offset in error for prefix " << len << ": "
            << error;
    }
}

TEST(CalibrationTest, JsonRejectsDuplicateAndMissingKeys)
{
    Rng rng(5);
    const Calibration calib =
        Calibration::sampled(grid23(), DeviceParams{}, rng);
    std::string text = calibrationJsonString(calib);
    while (!text.empty() && text.back() == '\n')
        text.pop_back();

    // Splice a second "epoch" before the closing brace: the last
    // value must NOT silently win.
    std::string dup = text;
    dup.insert(dup.size() - 1, ",\"epoch\":99");
    std::string error;
    EXPECT_FALSE(readCalibrationJson(dup, &error).has_value());
    EXPECT_NE(error.find("duplicate key 'epoch'"), std::string::npos)
        << error;
    EXPECT_NE(error.find("at byte"), std::string::npos) << error;

    // Drop the "zz" key entirely (well-formed JSON, incomplete
    // document) — a structurally valid but partial snapshot.
    const auto pos = text.find(",\"zz\":");
    ASSERT_NE(pos, std::string::npos);
    const std::string missing =
        text.substr(0, pos) + "}";
    EXPECT_FALSE(readCalibrationJson(missing, &error).has_value());
    EXPECT_NE(error.find("missing key 'zz'"), std::string::npos)
        << error;
    EXPECT_NE(error.find("at byte"), std::string::npos) << error;
}

TEST(CalibrationTest, FileLoadRejectsTruncatedFile)
{
    Rng rng(29);
    const Calibration calib =
        Calibration::sampled(grid23(), DeviceParams{}, rng);
    const std::string text = calibrationJsonString(calib);

    const auto dir = std::filesystem::temp_directory_path() /
                     ("qzz_calib_trunc_" +
                      std::to_string(std::random_device{}()));
    std::filesystem::create_directories(dir);
    const std::string path = (dir / "torn.qzzcalib").string();
    {
        std::ofstream out(path);
        out << text.substr(0, text.size() / 3);
    }
    std::string error;
    EXPECT_FALSE(loadCalibrationFile(path, &error).has_value());
    EXPECT_NE(error.find("at byte"), std::string::npos) << error;
    std::filesystem::remove_all(dir);
}

TEST(CalibrationTest, FileSaveLoadRoundTrip)
{
    Rng rng(23);
    Calibration calib = Calibration::jittered(
        grid23(), DeviceParams{}, CalibrationJitter{}, rng);
    calib.epoch = 7;

    const auto dir = std::filesystem::temp_directory_path() /
                     ("qzz_calib_test_" +
                      std::to_string(std::random_device{}()));
    const std::string path = (dir / "snapshot.json").string();
    ASSERT_TRUE(saveCalibrationFile(calib, path));
    std::string error;
    const auto back = loadCalibrationFile(path, &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ(*back, calib);
    EXPECT_FALSE(
        loadCalibrationFile((dir / "missing.json").string(), &error)
            .has_value());
    std::filesystem::remove_all(dir);
}

TEST(CalibrationTest, ValidationCatchesMismatches)
{
    Rng rng(2);
    Calibration calib =
        Calibration::sampled(grid23(), DeviceParams{}, rng);
    EXPECT_NO_THROW(calib.validateFor(grid23()));
    EXPECT_THROW(calib.validateFor(graph::ringTopology(6)), UserError);

    Calibration truncated = calib;
    truncated.t1.pop_back();
    EXPECT_THROW(truncated.validate(), UserError);

    Calibration unphysical = calib;
    unphysical.t1.assign(size_t(calib.num_qubits), us(10.0));
    unphysical.t2.assign(size_t(calib.num_qubits), us(50.0));
    EXPECT_THROW(unphysical.validate(), UserError);

    EXPECT_THROW(calib.withUniformCoherence(-1.0, 1.0), UserError);
    const Calibration coherent =
        calib.withUniformCoherence(us(100.0), us(150.0));
    EXPECT_EQ(coherent.t1[0], us(100.0));
    EXPECT_EQ(coherent.epoch, calib.epoch);
}

TEST(CalibrationTest, WithCoherenceReturnsNewDeviceValue)
{
    Rng rng(4);
    const Device base(grid23(), DeviceParams{}, rng);
    const Device lossy = base.withCoherence(us(50.0), us(50.0));
    // The original device is untouched (no shared-state mutation).
    EXPECT_TRUE(std::isinf(base.t1(0)));
    EXPECT_EQ(lossy.t1(3), us(50.0));
    EXPECT_EQ(lossy.couplings(), base.couplings());
}

TEST(CalibrationTest, MeanZzMatchesCouplings)
{
    Rng rng(6);
    const Calibration calib =
        Calibration::sampled(grid23(), DeviceParams{}, rng);
    double sum = 0.0;
    for (double v : calib.zz)
        sum += v;
    EXPECT_DOUBLE_EQ(calib.meanZz(), sum / double(calib.zz.size()));
}

} // namespace
} // namespace qzz::dev
