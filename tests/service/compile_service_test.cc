/**
 * @file
 * CompileService unit tests: async submit/await, cache-hit
 * bit-identity with a cold sequential compile (the determinism
 * contract that justifies caching), priority ordering, deadlines,
 * cancellation, queue bounds, drain/shutdown, and metrics.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "circuit/benchmarks.h"
#include "graph/topologies.h"
#include "service/artifact.h"
#include "service/compile_service.h"

namespace qzz::svc {
namespace {

std::shared_ptr<const dev::Device>
makeDevice(int rows = 2, int cols = 3, uint64_t seed = 2)
{
    Rng rng(seed);
    return std::make_shared<const dev::Device>(
        graph::gridTopology(rows, cols), dev::DeviceParams{}, rng);
}

core::CompileOptions
gaussianZzx()
{
    core::CompileOptions opt;
    opt.pulse = core::PulseMethod::Gaussian;
    opt.sched = core::SchedPolicy::Zzx;
    return opt;
}

CompileServiceConfig
serviceConfig(int workers, bool paused = false, size_t max_queue = 4096)
{
    CompileServiceConfig config;
    config.num_workers = workers;
    config.start_paused = paused;
    config.max_queue = max_queue;
    return config;
}

CompileRequest
qftRequest(const std::shared_ptr<const dev::Device> &device)
{
    return {ckt::qft(6), device, gaussianZzx(), {}};
}

TEST(CompileServiceTest, SubmitMatchesDirectCompilerBitForBit)
{
    auto device = makeDevice();
    CompileService service(serviceConfig(2));
    ServiceResult result = service.submit(qftRequest(device)).get();
    ASSERT_EQ(result.outcome, Outcome::Compiled);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result.status.ok());
    EXPECT_FALSE(result.diagnostics.stages.empty());

    // The service compiles the canonical gate order (the fingerprint
    // domain), so the reference cold compile must too.
    const core::Compiler direct =
        core::CompilerBuilder(*device).options(gaussianZzx()).build();
    core::CompileResult expected =
        direct.compile(canonicalGateOrder(ckt::qft(6)));
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(programArtifactString(*result.program),
              programArtifactString(expected.program));
}

TEST(CompileServiceTest, ReorderedDagEqualSubmissionsShareOneProgram)
{
    // Two gate lists with the same DAG but different order: the
    // second must hit the first's cache entry, and that shared
    // program must equal what either one's own cold compile (of the
    // canonical order) produces — the soundness condition for
    // DAG-invariant fingerprinting over order-sensitive routing.
    auto device = makeDevice();
    ckt::QuantumCircuit a(6, "pair");
    a.h(0);
    a.x(3);
    a.cx(0, 1);
    a.cx(3, 4);
    a.h(5);
    ckt::QuantumCircuit b(6, "pair");
    b.h(5);
    b.x(3);
    b.cx(3, 4);
    b.h(0);
    b.cx(0, 1);
    ASSERT_EQ(fingerprintRequest(a, *device, gaussianZzx()),
              fingerprintRequest(b, *device, gaussianZzx()));

    CompileService service(serviceConfig(1));
    ServiceResult first =
        service.submit({a, device, gaussianZzx(), {}}).get();
    ASSERT_EQ(first.outcome, Outcome::Compiled);
    ServiceResult second =
        service.submit({b, device, gaussianZzx(), {}}).get();
    ASSERT_EQ(second.outcome, Outcome::CacheHit);
    EXPECT_EQ(second.program.get(), first.program.get());

    const core::Compiler direct =
        core::CompilerBuilder(*device).options(gaussianZzx()).build();
    core::CompileResult cold_b =
        direct.compile(canonicalGateOrder(b));
    ASSERT_TRUE(cold_b.ok());
    EXPECT_EQ(programArtifactString(*second.program),
              programArtifactString(cold_b.program));
}

TEST(CompileServiceTest, CacheHitIsBitIdenticalToColdCompile)
{
    // The determinism contract end to end: a request generated from
    // an explicit seed (no global RNG anywhere), compiled cold by a
    // sequential Compiler, must match the service's cached answer
    // byte for byte.
    auto device = makeDevice();
    const uint64_t seed = 5;
    auto circuit = ckt::namedBenchmark("QAOA", 6, seed);
    ASSERT_TRUE(circuit.has_value());

    CompileService service(serviceConfig(2));
    CompileRequest first{*circuit, device, gaussianZzx(), {}};
    first.request.seed = seed;
    ServiceResult cold = service.submit(std::move(first)).get();
    ASSERT_EQ(cold.outcome, Outcome::Compiled);
    EXPECT_EQ(cold.seed, seed);

    CompileRequest second{*circuit, device, gaussianZzx(), {}};
    second.request.seed = seed;
    ServiceResult warm = service.submit(std::move(second)).get();
    ASSERT_EQ(warm.outcome, Outcome::CacheHit);
    EXPECT_EQ(warm.fingerprint, cold.fingerprint);
    // The cache hands out the same immutable program instance...
    EXPECT_EQ(warm.program.get(), cold.program.get());

    // ...which is bit-identical to an independent cold compile of
    // the canonical gate order.
    const core::Compiler direct =
        core::CompilerBuilder(*device).options(gaussianZzx()).build();
    core::CompileResult expected =
        direct.compile(canonicalGateOrder(*circuit));
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(programArtifactString(*warm.program),
              programArtifactString(expected.program));
}

TEST(CompileServiceTest, UseCacheFalseForcesColdCompiles)
{
    auto device = makeDevice();
    CompileService service(serviceConfig(1));
    CompileRequest req = qftRequest(device);
    req.request.use_cache = false;
    ServiceResult a = service.submit(req).get();
    ServiceResult b = service.submit(req).get();
    EXPECT_EQ(a.outcome, Outcome::Compiled);
    EXPECT_EQ(b.outcome, Outcome::Compiled);
    const MetricsSnapshot m = service.metrics();
    EXPECT_EQ(m.cache_hits, 0u);
    EXPECT_EQ(m.cache_misses, 0u);
    EXPECT_EQ(m.cache_stats.insertions, 0u);
}

TEST(CompileServiceTest, PriorityOrderWithinPausedQueue)
{
    auto device = makeDevice();
    CompileService service(
        serviceConfig(1, /*paused=*/true));
    CompileRequest low = qftRequest(device);
    low.request.priority = 0;
    CompileRequest high = qftRequest(device);
    high.request.use_cache = false; // distinct work, same circuit
    high.request.priority = 10;
    RequestHandle low_handle = service.submit(std::move(low));
    RequestHandle high_handle = service.submit(std::move(high));
    service.resume();
    ServiceResult low_result = low_handle.get();
    ServiceResult high_result = high_handle.get();
    // Submitted second, served first.
    EXPECT_LT(high_result.completion_seq, low_result.completion_seq);
}

TEST(CompileServiceTest, FifoWithinSamePriority)
{
    auto device = makeDevice();
    CompileService service(
        serviceConfig(1, /*paused=*/true));
    std::vector<RequestHandle> handles;
    for (int i = 0; i < 3; ++i)
        handles.push_back(service.submit(qftRequest(device)));
    service.resume();
    uint64_t prev = 0;
    for (RequestHandle &h : handles) {
        const uint64_t seq = h.get().completion_seq;
        EXPECT_GT(seq, prev);
        prev = seq;
    }
}

TEST(CompileServiceTest, CancelQueuedRequest)
{
    auto device = makeDevice();
    CompileService service(
        serviceConfig(1, /*paused=*/true));
    RequestHandle handle = service.submit(qftRequest(device));
    EXPECT_TRUE(handle.cancel());
    EXPECT_FALSE(handle.cancel()); // already requested
    service.resume();
    ServiceResult result = handle.get();
    EXPECT_EQ(result.outcome, Outcome::Cancelled);
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(service.metrics().cancelled, 1u);
}

TEST(CompileServiceTest, DeadlineExpiresWhileQueued)
{
    auto device = makeDevice();
    CompileService service(
        serviceConfig(1, /*paused=*/true));
    CompileRequest req = qftRequest(device);
    req.request.deadline = std::chrono::milliseconds(1);
    RequestHandle handle = service.submit(std::move(req));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    service.resume();
    ServiceResult result = handle.get();
    EXPECT_EQ(result.outcome, Outcome::DeadlineExceeded);
    EXPECT_EQ(service.metrics().expired, 1u);
}

TEST(CompileServiceTest, GenerousDeadlineStillCompiles)
{
    auto device = makeDevice();
    CompileService service(serviceConfig(1));
    CompileRequest req = qftRequest(device);
    req.request.deadline = std::chrono::milliseconds(60000);
    EXPECT_EQ(service.submit(std::move(req)).get().outcome,
              Outcome::Compiled);
}

TEST(CompileServiceTest, QueueBoundRejects)
{
    auto device = makeDevice();
    CompileService service(serviceConfig(1, /*paused=*/true, /*max_queue=*/1));
    RequestHandle queued = service.submit(qftRequest(device));
    RequestHandle rejected = service.submit(qftRequest(device));
    ServiceResult result = rejected.get(); // already resolved
    EXPECT_EQ(result.outcome, Outcome::Rejected);
    EXPECT_EQ(service.metrics().rejected, 1u);
    service.resume();
    EXPECT_EQ(queued.get().outcome, Outcome::Compiled);
}

TEST(CompileServiceTest, CompileFailureIsPerRequest)
{
    auto device = makeDevice(); // 6 qubits
    CompileService service(serviceConfig(1));
    ckt::QuantumCircuit too_big(12, "too-big");
    too_big.h(0);
    CompileRequest bad{too_big, device, gaussianZzx(), {}};
    ServiceResult result = service.submit(std::move(bad)).get();
    EXPECT_EQ(result.outcome, Outcome::Failed);
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.status.code, core::CompileStatusCode::InvalidInput);
    EXPECT_EQ(service.metrics().failed, 1u);
    // The service keeps serving after a failure.
    EXPECT_EQ(service.submit(qftRequest(device)).get().outcome,
              Outcome::Compiled);
}

TEST(CompileServiceTest, DegenerateDeviceFailsRequestNotService)
{
    // A topology with a self-loop coupling makes ZZXSched's
    // per-device table build (planar embedding) throw inside
    // Compiler construction.  That must surface as a Failed result
    // on this request — an uncaught exception on a worker thread
    // would std::terminate the whole service.
    graph::Topology looped = graph::customTopology(
        "self-loop", 3, {{0, 1}, {1, 2}, {2, 2}},
        {{0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}});
    Rng rng(2);
    auto device = std::make_shared<const dev::Device>(
        std::move(looped), dev::DeviceParams{}, rng);

    CompileService service(serviceConfig(1));
    ckt::QuantumCircuit c(3);
    c.h(0);
    c.cx(0, 1);
    ServiceResult result =
        service.submit({c, device, gaussianZzx(), {}}).get();
    EXPECT_EQ(result.outcome, Outcome::Failed);
    EXPECT_FALSE(result.status.ok());
    EXPECT_FALSE(result.status.message.empty());
    // The service survives and keeps serving.
    EXPECT_EQ(service.submit(qftRequest(makeDevice())).get().outcome,
              Outcome::Compiled);
}

TEST(CompileServiceTest, SubmitBatchLandsInOrder)
{
    auto device = makeDevice();
    std::vector<CompileRequest> requests;
    for (uint64_t seed = 1; seed <= 4; ++seed) {
        Rng rng(seed);
        requests.push_back(
            {ckt::hiddenShift(6, rng), device, gaussianZzx(), {}});
    }
    CompileService service(serviceConfig(2));
    std::vector<RequestHandle> handles =
        service.submitBatch(std::move(requests));
    ASSERT_EQ(handles.size(), 4u);
    for (size_t i = 0; i < handles.size(); ++i) {
        ServiceResult result = handles[i].get();
        // Two seeds may generate the same circuit, in which case the
        // later request legitimately lands as a cache hit.
        EXPECT_TRUE(result.ok()) << "request " << i;
        Rng rng(uint64_t(i) + 1);
        EXPECT_EQ(result.fingerprint,
                  fingerprintRequest(ckt::hiddenShift(6, rng), *device,
                                     gaussianZzx()));
    }
}

TEST(CompileServiceTest, DrainWaitsForAllInFlight)
{
    auto device = makeDevice();
    CompileService service(serviceConfig(2));
    std::vector<RequestHandle> handles;
    for (int i = 0; i < 6; ++i) {
        CompileRequest req = qftRequest(device);
        req.request.use_cache = false;
        handles.push_back(service.submit(std::move(req)));
    }
    service.drain();
    for (RequestHandle &h : handles)
        EXPECT_EQ(h.future().wait_for(std::chrono::seconds(0)),
                  std::future_status::ready);
    EXPECT_EQ(service.metrics().queue_depth, 0u);
}

TEST(CompileServiceTest, ShutdownWithoutDrainCancelsQueued)
{
    auto device = makeDevice();
    CompileService service(
        serviceConfig(1, /*paused=*/true));
    std::vector<RequestHandle> handles;
    for (int i = 0; i < 3; ++i)
        handles.push_back(service.submit(qftRequest(device)));
    service.shutdown(/*drain_pending=*/false);
    for (RequestHandle &h : handles)
        EXPECT_EQ(h.get().outcome, Outcome::Cancelled);
    // Post-shutdown submissions are rejected, not lost.
    EXPECT_EQ(service.submit(qftRequest(device)).get().outcome,
              Outcome::Rejected);
}

TEST(CompileServiceTest, MetricsSnapshotIsCoherent)
{
    auto device = makeDevice();
    CompileService service(serviceConfig(2));
    // 2 unique compiles + 4 repeats of the first.
    EXPECT_TRUE(service.submit(qftRequest(device)).get().ok());
    std::vector<RequestHandle> handles;
    Rng rng(1);
    handles.push_back(service.submit(
        {ckt::hiddenShift(6, rng), device, gaussianZzx(), {}}));
    for (int i = 0; i < 4; ++i)
        handles.push_back(service.submit(qftRequest(device)));
    for (RequestHandle &h : handles)
        EXPECT_TRUE(h.get().ok());

    const MetricsSnapshot m = service.metrics();
    EXPECT_EQ(m.submitted, 6u);
    EXPECT_EQ(m.completed, 6u);
    EXPECT_EQ(m.failed, 0u);
    EXPECT_EQ(m.queue_depth, 0u);
    EXPECT_EQ(m.workers, 2);
    EXPECT_EQ(m.cache_hits + m.cache_misses, 6u);
    EXPECT_GE(m.cache_hits, 4u); // the four repeats at minimum
    EXPECT_GT(m.throughput_per_s, 0.0);
    EXPECT_GT(m.uptime_ms, 0.0);
    EXPECT_LE(m.latency_p50_ms, m.latency_p95_ms);
    EXPECT_LE(m.latency_p95_ms, m.latency_p99_ms);
    EXPECT_GE(m.cache_hit_rate, 4.0 / 6.0 - 1e-9);
    EXPECT_EQ(m.cache_stats.entries, 2u);
}

TEST(CompileServiceTest, ConcurrentDuplicatesColdCompileExactlyOnce)
{
    // The coalescing contract: N identical cache-using submissions
    // racing across the worker pool produce exactly ONE cold compile
    // — a duplicate either parks on the in-flight compilation
    // (Coalesced) or lands on the cache entry the winner published
    // (CacheHit).  Before coalescing, two workers could both miss
    // before either inserted and compile the same fingerprint twice.
    constexpr int kDuplicates = 8;
    auto device = makeDevice(3, 4);
    CompileService service(serviceConfig(4, /*paused=*/true));
    std::vector<RequestHandle> handles;
    for (int i = 0; i < kDuplicates; ++i)
        handles.push_back(service.submit(qftRequest(device)));
    service.resume();

    int compiled = 0, coalesced = 0, hits = 0;
    std::shared_ptr<const core::CompiledProgram> first;
    for (RequestHandle &h : handles) {
        ServiceResult result = h.get();
        ASSERT_TRUE(result.ok());
        if (!first)
            first = result.program;
        // Every duplicate shares the single compiled instance.
        EXPECT_EQ(result.program.get(), first.get());
        switch (result.outcome) {
        case Outcome::Compiled:
            ++compiled;
            break;
        case Outcome::Coalesced:
            ++coalesced;
            break;
        case Outcome::CacheHit:
            ++hits;
            break;
        default:
            FAIL() << outcomeName(result.outcome);
        }
    }
    EXPECT_EQ(compiled, 1);
    EXPECT_EQ(coalesced + hits, kDuplicates - 1);

    const MetricsSnapshot m = service.metrics();
    EXPECT_EQ(m.completed, uint64_t(kDuplicates));
    EXPECT_EQ(m.coalesced, uint64_t(coalesced));
    EXPECT_EQ(m.cache_hits, uint64_t(hits));
}

TEST(CompileServiceTest, CoalescedFollowerSharesThePrimaryProgram)
{
    // Two workers, two identical paused requests: the second worker
    // claims the duplicate while the first is still compiling and
    // must park on it rather than compile again.
    auto device = makeDevice(3, 4, 5);
    CompileService service(serviceConfig(2, /*paused=*/true));
    RequestHandle a = service.submit(qftRequest(device));
    RequestHandle b = service.submit(qftRequest(device));
    service.resume();
    ServiceResult ra = a.get();
    ServiceResult rb = b.get();
    ASSERT_TRUE(ra.ok() && rb.ok());
    EXPECT_EQ(ra.fingerprint, rb.fingerprint);
    EXPECT_EQ(ra.program.get(), rb.program.get());
    const int cold = (ra.outcome == Outcome::Compiled ? 1 : 0) +
                     (rb.outcome == Outcome::Compiled ? 1 : 0);
    EXPECT_EQ(cold, 1);
}

TEST(CompileServiceTest, UseCacheFalseNeverCoalesces)
{
    // Explicit cold compiles must stay cold — they neither park on an
    // in-flight duplicate nor serve followers.
    auto device = makeDevice();
    CompileService service(serviceConfig(2, /*paused=*/true));
    CompileRequest req = qftRequest(device);
    req.request.use_cache = false;
    RequestHandle a = service.submit(req);
    RequestHandle b = service.submit(req);
    service.resume();
    EXPECT_EQ(a.get().outcome, Outcome::Compiled);
    EXPECT_EQ(b.get().outcome, Outcome::Compiled);
    EXPECT_EQ(service.metrics().coalesced, 0u);
}

TEST(CompileServiceTest, CoalescingDisabledStillServes)
{
    CompileServiceConfig config = serviceConfig(2, /*paused=*/true);
    config.coalesce = false;
    auto device = makeDevice();
    CompileService service(config);
    RequestHandle a = service.submit(qftRequest(device));
    RequestHandle b = service.submit(qftRequest(device));
    service.resume();
    ServiceResult ra = a.get();
    ServiceResult rb = b.get();
    ASSERT_TRUE(ra.ok() && rb.ok());
    EXPECT_EQ(programArtifactString(*ra.program),
              programArtifactString(*rb.program));
    EXPECT_EQ(service.metrics().coalesced, 0u);
}

TEST(CompileServiceTest, WarmRequestsJumpAheadOfColdOnes)
{
    // Cache-aware admission: a request whose fingerprint is already
    // resident must be served before cold requests submitted earlier
    // in the same priority class.
    auto device = makeDevice();

    // Compile the warm target once elsewhere to obtain its program,
    // then seed the paused service's cache with it directly — the
    // warm probe happens at submit time, so the entry must exist
    // before the warm submission, not merely before serving.
    CompileService oracle(serviceConfig(1));
    ServiceResult seeded = oracle.submit(qftRequest(device)).get();
    ASSERT_EQ(seeded.outcome, Outcome::Compiled);

    CompileService service(serviceConfig(1, /*paused=*/true));
    service.cache().insert(seeded.fingerprint, seeded.program);

    std::vector<RequestHandle> cold;
    for (uint64_t seed = 1; seed <= 2; ++seed) {
        Rng rng(seed);
        cold.push_back(service.submit(
            {ckt::hiddenShift(6, rng), device, gaussianZzx(), {}}));
    }
    RequestHandle warm = service.submit(qftRequest(device));
    service.resume();

    ServiceResult warm_result = warm.get();
    EXPECT_EQ(warm_result.outcome, Outcome::CacheHit);
    for (RequestHandle &h : cold) {
        // Submitted first, served after the warm jump.
        EXPECT_GT(h.get().completion_seq, warm_result.completion_seq);
    }
    EXPECT_EQ(service.metrics().warm_boosted, 1u);
}

TEST(CompileServiceTest, ColdRequestsBatchPerCompilerKey)
{
    // Interleaved submissions against two compiler keys (different
    // scheduling policies): with a batch limit wider than either
    // group, the whole first-submitted group is served back to back
    // before the queue rotates to the second.
    auto device = makeDevice();
    core::CompileOptions zzx = gaussianZzx();
    core::CompileOptions seq = gaussianZzx();
    seq.sched = core::SchedPolicy::Par;

    CompileService service(serviceConfig(1, /*paused=*/true));
    std::vector<RequestHandle> a, b;
    for (int i = 0; i < 3; ++i) {
        CompileRequest ra{ckt::qft(6), device, zzx, {}};
        ra.request.use_cache = false;
        a.push_back(service.submit(std::move(ra)));
        CompileRequest rb{ckt::qft(6), device, seq, {}};
        rb.request.use_cache = false;
        b.push_back(service.submit(std::move(rb)));
    }
    service.resume();

    uint64_t last_a = 0, first_b = ~uint64_t(0);
    for (RequestHandle &h : a)
        last_a = std::max(last_a, h.get().completion_seq);
    for (RequestHandle &h : b)
        first_b = std::min(first_b, h.get().completion_seq);
    EXPECT_LT(last_a, first_b);
}

TEST(CompileServiceTest, ColdBatchLimitBoundsGroupStickiness)
{
    // With cold_batch_limit = 1 the same interleaved workload is
    // served oldest-head-first — global FIFO across the groups —
    // instead of group A monopolizing the worker.
    auto device = makeDevice();
    core::CompileOptions zzx = gaussianZzx();
    core::CompileOptions seq = gaussianZzx();
    seq.sched = core::SchedPolicy::Par;

    CompileServiceConfig config = serviceConfig(1, /*paused=*/true);
    config.cold_batch_limit = 1;
    CompileService service(config);
    std::vector<RequestHandle> handles;
    for (int i = 0; i < 2; ++i) {
        CompileRequest ra{ckt::qft(6), device, zzx, {}};
        ra.request.use_cache = false;
        handles.push_back(service.submit(std::move(ra)));
        CompileRequest rb{ckt::qft(6), device, seq, {}};
        rb.request.use_cache = false;
        handles.push_back(service.submit(std::move(rb)));
    }
    service.resume();

    uint64_t prev = 0;
    for (RequestHandle &h : handles) {
        const uint64_t cseq = h.get().completion_seq;
        EXPECT_GT(cseq, prev);
        prev = cseq;
    }
}

TEST(CompileServiceTest, CacheAwareOffRestoresStrictFifo)
{
    // The degenerate mode: warm requests wait their turn like
    // everything else.
    auto device = makeDevice();
    CompileService oracle(serviceConfig(1));
    ServiceResult seeded = oracle.submit(qftRequest(device)).get();
    ASSERT_EQ(seeded.outcome, Outcome::Compiled);

    CompileServiceConfig config = serviceConfig(1, /*paused=*/true);
    config.cache_aware_admission = false;
    CompileService service(config);
    service.cache().insert(seeded.fingerprint, seeded.program);

    Rng rng(1);
    RequestHandle cold = service.submit(
        {ckt::hiddenShift(6, rng), device, gaussianZzx(), {}});
    RequestHandle warm = service.submit(qftRequest(device));
    service.resume();

    ServiceResult cold_result = cold.get();
    ServiceResult warm_result = warm.get();
    EXPECT_EQ(warm_result.outcome, Outcome::CacheHit);
    EXPECT_LT(cold_result.completion_seq, warm_result.completion_seq);
    EXPECT_EQ(service.metrics().warm_boosted, 0u);
}

TEST(CompileServiceTest, OutcomeNamesRoundTripForDisplay)
{
    EXPECT_EQ(outcomeName(Outcome::Compiled), "Compiled");
    EXPECT_EQ(outcomeName(Outcome::CacheHit), "CacheHit");
    EXPECT_EQ(outcomeName(Outcome::Coalesced), "Coalesced");
    EXPECT_EQ(outcomeName(Outcome::Failed), "Failed");
    EXPECT_EQ(outcomeName(Outcome::Cancelled), "Cancelled");
    EXPECT_EQ(outcomeName(Outcome::DeadlineExceeded),
              "DeadlineExceeded");
    EXPECT_EQ(outcomeName(Outcome::Rejected), "Rejected");
}

} // namespace
} // namespace qzz::svc
