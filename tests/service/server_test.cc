/**
 * @file
 * Serving front-end tests: the Session wire protocol driven directly
 * over in-process streams (no sockets, no child process), plus
 * SocketTransport behavior — concurrent clients, per-session quit,
 * idle timeout, and the overlong-line bound.
 *
 * Error lines are asserted byte-exactly: they are the stdio daemon's
 * historical responses and must never drift.  Success lines embed
 * timings and a full program document, so those are checked by prefix
 * and field presence.  The hello response contains nested arrays,
 * which JsonObject (flat-only by design) cannot parse — hence the
 * substring checks.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/error.h"
#include "service/server.h"
#include "service/transport.h"

namespace qzz::svc {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

std::vector<std::string>
lines(const std::string &text)
{
    std::vector<std::string> out;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        out.push_back(line);
    return out;
}

/** Run one session over @p input against a fresh two-worker server
 *  and return (output lines, quit flag). */
std::pair<std::vector<std::string>, bool>
runTranscript(const std::string &input, ServerConfig config = {})
{
    if (config.workers == 0)
        config.workers = 2;
    Server server(config);
    std::istringstream in(input);
    std::ostringstream out;
    StreamConnection conn(in, out);
    const bool quit = server.runSession(conn);
    return {lines(out.str()), quit};
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.rfind(prefix, 0) == 0;
}

TEST(ServerSessionTest, ErrorLinesAreByteExact)
{
    const auto [out, quit] = runTranscript(
        "{\"id\":\"e1\",\"qubits\":3}\n"
        "{\"id\":\"e2\",\"benchmark\":\"QFT\"}\n"
        "{\"id\":\"e3\",\"benchmark\":\"QFT\",\"qubits\":1}\n"
        "{\"id\":\"e4\",\"benchmark\":\"nope\",\"qubits\":3}\n"
        "{\"id\":\"e5\",\"benchmark\":\"QFT\",\"qubits\":3,"
        "\"pulse\":\"nope\"}\n"
        "{\"id\":\"e6\",\"benchmark\":\"QFT\",\"qubits\":3,"
        "\"sched\":\"nope\"}\n"
        "{\"id\":\"e7\",\"benchmark\":\"QFT\",\"qubits\":3,"
        "\"topology\":\"torus\"}\n"
        "{\"cmd\":\"frobnicate\",\"id\":\"e8\"}\n");
    EXPECT_FALSE(quit); // EOF, not {"cmd":"quit"}
    ASSERT_EQ(out.size(), 8u);
    EXPECT_EQ(out[0],
              "{\"id\":\"e1\",\"ok\":false,\"error\":\"missing "
              "'benchmark' (one of: HS, QFT, QPE, QAOA, Ising, GRC, "
              "QV)\"}");
    EXPECT_EQ(out[1],
              "{\"id\":\"e2\",\"ok\":false,\"error\":\"missing or bad "
              "'qubits' (integer in [2, 256])\"}");
    EXPECT_EQ(out[2],
              "{\"id\":\"e3\",\"ok\":false,\"error\":\"missing or bad "
              "'qubits' (integer in [2, 256])\"}");
    EXPECT_EQ(out[3],
              "{\"id\":\"e4\",\"ok\":false,\"error\":\"unknown "
              "benchmark 'nope' (one of: HS, QFT, QPE, QAOA, Ising, "
              "GRC, QV)\"}");
    EXPECT_TRUE(startsWith(out[4],
                           "{\"id\":\"e5\",\"ok\":false,\"error\":"
                           "\"unknown pulse method 'nope' (one of: "))
        << out[4];
    EXPECT_TRUE(startsWith(out[5],
                           "{\"id\":\"e6\",\"ok\":false,\"error\":"
                           "\"unknown scheduling policy 'nope' (one "
                           "of: "))
        << out[5];
    EXPECT_EQ(out[6],
              "{\"id\":\"e7\",\"ok\":false,\"error\":\"unknown "
              "topology 'torus' (one of: grid, line, ring, heavyhex, "
              "trigrid)\"}");
    EXPECT_EQ(out[7],
              "{\"id\":\"e8\",\"ok\":false,\"error\":\"unknown cmd "
              "'frobnicate'\"}");
}

TEST(ServerSessionTest, ParseErrorsUseLineNumberIds)
{
    const auto [out, quit] = runTranscript("\n"
                                           "   \n"
                                           "this is not json\n");
    ASSERT_EQ(out.size(), 1u);
    // Blank lines are skipped but still counted: the bad line is #3.
    EXPECT_TRUE(startsWith(
        out[0], "{\"id\":\"3\",\"ok\":false,\"error\":\"parse error: "))
        << out[0];
}

TEST(ServerSessionTest, CompileThenCacheHitInRequestOrder)
{
    // The metrics record between a and b is a synchronization point
    // (control records settle every earlier response first), so a is
    // compiled and cached before b is even submitted — b is a
    // deterministic CacheHit, never racing into Coalesced.
    const auto [out, quit] = runTranscript(
        "{\"id\":\"a\",\"benchmark\":\"QFT\",\"qubits\":3}\n"
        "{\"cmd\":\"metrics\"}\n"
        "{\"id\":\"b\",\"benchmark\":\"QFT\",\"qubits\":3}\n"
        "{\"id\":\"c\",\"benchmark\":\"HS\",\"qubits\":4}\n"
        "{\"cmd\":\"quit\"}\n"
        "{\"id\":\"never\",\"benchmark\":\"QFT\",\"qubits\":3}\n");
    EXPECT_TRUE(quit);
    ASSERT_EQ(out.size(), 4u); // nothing after quit is served
    EXPECT_TRUE(startsWith(out[0],
                           "{\"id\":\"a\",\"ok\":true,\"outcome\":"
                           "\"Compiled\",\"benchmark\":\"QFT-3\","
                           "\"fingerprint\":\""))
        << out[0];
    EXPECT_NE(out[0].find("\"cache_hit\":false"), std::string::npos);
    EXPECT_NE(out[0].find("\"program\":{"), std::string::npos);
    EXPECT_TRUE(startsWith(out[1], "{\"metrics\":true,")) << out[1];
    EXPECT_TRUE(startsWith(out[2],
                           "{\"id\":\"b\",\"ok\":true,\"outcome\":"
                           "\"CacheHit\",\"benchmark\":\"QFT-3\","
                           "\"fingerprint\":\""))
        << out[2];
    EXPECT_NE(out[2].find("\"cache_hit\":true"), std::string::npos);
    EXPECT_TRUE(startsWith(out[3],
                           "{\"id\":\"c\",\"ok\":true,\"outcome\":"
                           "\"Compiled\",\"benchmark\":\"HS-4\","))
        << out[3];

    // Identical requests produce identical fingerprints.
    const auto fpOf = [](const std::string &line) {
        const auto pos = line.find("\"fingerprint\":\"");
        return line.substr(pos + 15, 32);
    };
    EXPECT_EQ(fpOf(out[0]), fpOf(out[2]));
    EXPECT_NE(fpOf(out[0]), fpOf(out[3]));
}

TEST(ServerSessionTest, HelloAnnouncesVersionsAndCapabilities)
{
    const auto [out, quit] =
        runTranscript("{\"cmd\":\"hello\"}\n{\"cmd\":\"quit\"}\n");
    EXPECT_TRUE(quit);
    ASSERT_EQ(out.size(), 1u);
    const std::string &hello = out[0];
    EXPECT_TRUE(startsWith(hello, "{\"hello\":true,\"protocol_version\":"))
        << hello;
    EXPECT_NE(hello.find("\"protocol_version\":1"), std::string::npos);
    EXPECT_NE(hello.find("\"fingerprint_version\":"), std::string::npos);
    EXPECT_NE(hello.find("\"artifact_version\":"), std::string::npos);
    EXPECT_NE(hello.find("\"manifest_version\":"), std::string::npos);
    EXPECT_NE(hello.find("\"benchmarks\":[\"HS\",\"QFT\""),
              std::string::npos);
    EXPECT_NE(hello.find("\"pulse_methods\":["), std::string::npos);
    EXPECT_NE(hello.find("\"sched_policies\":["), std::string::npos);
    EXPECT_NE(hello.find("\"topologies\":[\"grid\",\"line\",\"ring\","
                         "\"heavyhex\",\"trigrid\"]"),
              std::string::npos);
    EXPECT_NE(hello.find("\"commands\":[\"hello\",\"metrics\",\"gc\","
                         "\"calibrate\",\"quit\"]"),
              std::string::npos);
    EXPECT_NE(hello.find("\"events\":[\"calib_epoch\"]"),
              std::string::npos);
    // No calib_events field in the request -> not subscribed.
    EXPECT_NE(hello.find("\"calib_events\":false"), std::string::npos);
}

TEST(ServerSessionTest, MetricsIncludesCacheAndAdmissionCounters)
{
    const auto [out, quit] = runTranscript(
        "{\"id\":\"a\",\"benchmark\":\"QFT\",\"qubits\":3}\n"
        "{\"cmd\":\"metrics\"}\n");
    ASSERT_EQ(out.size(), 2u);
    const std::string &metrics = out[1];
    EXPECT_TRUE(startsWith(metrics, "{\"metrics\":true,\"submitted\":1,"))
        << metrics;
    EXPECT_NE(metrics.find("\"completed\":1"), std::string::npos);
    EXPECT_NE(metrics.find("\"warm_boosted\":0"), std::string::npos);
    EXPECT_NE(metrics.find("\"cache_entries\":1"), std::string::npos);
    EXPECT_NE(metrics.find("\"cache_entry_bytes\":"), std::string::npos);
    EXPECT_NE(metrics.find("\"disk_writes\":0"), std::string::npos);
    EXPECT_NE(metrics.find("\"disk_bytes_written\":0"),
              std::string::npos);
    EXPECT_NE(metrics.find("\"calib_epochs_applied\":0"),
              std::string::npos);
    EXPECT_NE(metrics.find("\"calib_updates_rejected\":0"),
              std::string::npos);
    EXPECT_NE(metrics.find("\"calib_current\":{}"), std::string::npos);
}

TEST(ServerSessionTest, GcVerbReportsDisabledWithoutArtifactDir)
{
    const auto [out, quit] = runTranscript("{\"cmd\":\"gc\"}\n");
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], "{\"gc\":true,\"enabled\":false}");
}

TEST(ServerSessionTest, GcVerbRunsAPassOverTheArtifactTier)
{
    const std::string dir =
        (fs::temp_directory_path() / "qzz_server_gc_verb").string();
    fs::remove_all(dir);
    fs::create_directories(dir);

    ServerConfig config;
    config.artifact_dir = dir;
    const auto [out, quit] = runTranscript(
        "{\"id\":\"a\",\"benchmark\":\"QFT\",\"qubits\":3}\n"
        "{\"cmd\":\"gc\"}\n",
        config);
    ASSERT_EQ(out.size(), 2u);
    const std::string &gc = out[1];
    EXPECT_TRUE(startsWith(gc, "{\"gc\":true,\"enabled\":true,"
                               "\"scanned\":1,"))
        << gc;
    EXPECT_NE(gc.find("\"evicted\":0"), std::string::npos);
    EXPECT_NE(gc.find("\"capacity_bytes\":0"), std::string::npos);
    EXPECT_NE(gc.find("\"passes\":1"), std::string::npos);
    fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// SocketTransport
// ---------------------------------------------------------------------------

int
connectTcp(int port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(uint16_t(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
sendAll(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            ::send(fd, data.data() + off, data.size() - off, 0);
        if (n <= 0)
            return false;
        off += size_t(n);
    }
    return true;
}

/** Read one '\n'-terminated line; empty string on EOF. */
std::string
recvLine(int fd)
{
    std::string line;
    char c = 0;
    while (::recv(fd, &c, 1, 0) == 1) {
        if (c == '\n')
            return line;
        line += c;
    }
    return line;
}

TEST(SocketTransportTest, ServesConcurrentClientsWithSessionScopedQuit)
{
    SocketTransportConfig tc;
    tc.listen = "tcp:127.0.0.1:0";
    SocketTransport transport(tc);
    ASSERT_GT(transport.port(), 0);

    ServerConfig config;
    config.workers = 2;
    Server server(config);
    std::thread serving([&] { server.serve(transport); });

    const auto client = [&](const std::string &tag) {
        const int fd = connectTcp(transport.port());
        ASSERT_GE(fd, 0);
        ASSERT_TRUE(sendAll(
            fd, "{\"cmd\":\"hello\"}\n"
                "{\"id\":\"" + tag + "1\",\"benchmark\":\"QFT\","
                "\"qubits\":3}\n"
                "{\"id\":\"" + tag + "2\",\"benchmark\":\"QFT\","
                "\"qubits\":3}\n"
                "{\"cmd\":\"quit\"}\n"));
        // Per-connection responses arrive in request order.
        EXPECT_TRUE(startsWith(recvLine(fd), "{\"hello\":true,"));
        EXPECT_TRUE(startsWith(recvLine(fd), "{\"id\":\"" + tag + "1\""));
        EXPECT_TRUE(startsWith(recvLine(fd), "{\"id\":\"" + tag + "2\""));
        EXPECT_EQ(recvLine(fd), ""); // quit closed this session only
        ::close(fd);
    };
    std::thread a([&] { client("a"); });
    std::thread b([&] { client("b"); });
    a.join();
    b.join();

    // quit is session-scoped: the daemon still accepts new clients.
    const int fd = connectTcp(transport.port());
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(sendAll(fd, "{\"cmd\":\"hello\"}\n"));
    EXPECT_TRUE(startsWith(recvLine(fd), "{\"hello\":true,"));
    ::close(fd);

    transport.shutdown();
    serving.join();
}

TEST(SocketTransportTest, IdleTimeoutDisconnectsSilentPeers)
{
    SocketTransportConfig tc;
    tc.listen = "tcp:127.0.0.1:0";
    tc.idle_timeout = 50ms;
    SocketTransport transport(tc);

    const int fd = connectTcp(transport.port());
    ASSERT_GE(fd, 0);
    auto conn = transport.accept();
    ASSERT_NE(conn, nullptr);

    std::string line;
    EXPECT_FALSE(conn->readLine(line)); // silent peer -> timed out
    ::close(fd);
    transport.shutdown();
}

TEST(SocketTransportTest, OverlongLinesEndTheSession)
{
    SocketTransportConfig tc;
    tc.listen = "tcp:127.0.0.1:0";
    tc.max_line_bytes = 64;
    SocketTransport transport(tc);

    const int fd = connectTcp(transport.port());
    ASSERT_GE(fd, 0);
    auto conn = transport.accept();
    ASSERT_NE(conn, nullptr);

    ASSERT_TRUE(sendAll(fd, std::string(256, 'x')));
    std::string line;
    EXPECT_FALSE(conn->readLine(line));
    ::close(fd);
    transport.shutdown();
}

TEST(SocketTransportTest, UnixListenerRoundTripsAndUnlinksItsPath)
{
    const std::string path =
        (fs::temp_directory_path() / "qzz_server_test.sock").string();
    fs::remove(path);
    {
        SocketTransportConfig tc;
        tc.listen = "unix:" + path;
        SocketTransport transport(tc);
        EXPECT_TRUE(fs::exists(path));
        EXPECT_EQ(transport.name(), "unix:" + path);
        transport.shutdown();
        EXPECT_EQ(transport.accept(), nullptr);
    }
    EXPECT_FALSE(fs::exists(path)); // destructor unlinks
}

TEST(SocketTransportTest, RejectsMalformedListenSpecs)
{
    for (const std::string spec :
         {"", "tcp:", "tcp:notaport", "udp:1234", "tcp:999999",
          "tcp:256.1.1.1:80"}) {
        SocketTransportConfig tc;
        tc.listen = spec;
        EXPECT_THROW(SocketTransport{tc}, UserError) << spec;
    }
}

} // namespace
} // namespace qzz::svc
