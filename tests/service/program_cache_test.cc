/**
 * @file
 * ProgramCache unit tests: LRU semantics, capacity bounds across
 * shards, counters, the on-disk artifact tier (atomic write +
 * lossless reload), and a multi-threaded stress test exercising the
 * mutex striping (runs under ASan/UBSan and the TSan CI job).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "circuit/benchmarks.h"
#include "core/compiler.h"
#include "graph/topologies.h"
#include "service/artifact.h"
#include "service/program_cache.h"

namespace qzz::svc {
namespace {

/** A tiny synthetic program (no compile, no pulse library). */
std::shared_ptr<const core::CompiledProgram>
makeProgram(int tag)
{
    core::CompiledProgram p;
    p.native = ckt::QuantumCircuit(1, "p" + std::to_string(tag));
    p.native.sx(0);
    core::Layer layer;
    layer.duration = double(tag);
    layer.gates.push_back({ckt::Gate(ckt::GateKind::SX, {0}), false});
    p.schedule.num_qubits = 1;
    p.schedule.layers.push_back(layer);
    p.pulse_method = core::PulseMethod::Gaussian;
    p.sched_policy = core::SchedPolicy::Par;
    return std::make_shared<const core::CompiledProgram>(std::move(p));
}

Fingerprint
key(uint64_t i)
{
    return FingerprintBuilder().mix(i).finish();
}

ProgramCacheConfig
cacheConfig(size_t capacity, int shards, std::string artifact_dir = "")
{
    ProgramCacheConfig config;
    config.capacity = capacity;
    config.shards = shards;
    config.artifact_dir = std::move(artifact_dir);
    return config;
}

TEST(ProgramCacheTest, InsertLookupAndCounters)
{
    ProgramCache cache(cacheConfig(4, 1));
    EXPECT_EQ(cache.lookup(key(1)), nullptr);
    auto p = makeProgram(1);
    cache.insert(key(1), p);
    EXPECT_EQ(cache.lookup(key(1)), p);
    const ProgramCacheStats s = cache.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.insertions, 1u);
    EXPECT_EQ(s.entries, 1u);
    EXPECT_DOUBLE_EQ(s.hitRate(), 0.5);
}

TEST(ProgramCacheTest, LruEvictsColdestFirst)
{
    ProgramCache cache(cacheConfig(2, 1));
    cache.insert(key(1), makeProgram(1));
    cache.insert(key(2), makeProgram(2));
    // Refresh key 1, then overflow: key 2 is now the coldest.
    EXPECT_NE(cache.lookup(key(1)), nullptr);
    cache.insert(key(3), makeProgram(3));
    EXPECT_NE(cache.lookup(key(1)), nullptr);
    EXPECT_EQ(cache.lookup(key(2)), nullptr);
    EXPECT_NE(cache.lookup(key(3)), nullptr);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.size(), 2u);
}

TEST(ProgramCacheTest, ReinsertRefreshesInsteadOfDuplicating)
{
    ProgramCache cache(cacheConfig(2, 1));
    cache.insert(key(1), makeProgram(1));
    cache.insert(key(2), makeProgram(2));
    auto replacement = makeProgram(10);
    cache.insert(key(1), replacement); // refresh, key 2 coldest now
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.lookup(key(1)), replacement);
    cache.insert(key(3), makeProgram(3));
    EXPECT_EQ(cache.lookup(key(2)), nullptr);
}

TEST(ProgramCacheTest, CapacityBoundsHoldAcrossShards)
{
    ProgramCache cache(cacheConfig(8, 4));
    for (uint64_t i = 0; i < 64; ++i)
        cache.insert(key(i), makeProgram(int(i)));
    EXPECT_LE(cache.size(), 8u);
    const ProgramCacheStats s = cache.stats();
    EXPECT_EQ(s.insertions, 64u);
    EXPECT_GE(s.evictions, 56u);
}

TEST(ProgramCacheTest, ShardCountClampedToCapacity)
{
    ProgramCache tiny(cacheConfig(2, 64));
    EXPECT_LE(tiny.config().shards, 2);
    ProgramCache rounded(cacheConfig(100, 5));
    EXPECT_EQ(rounded.config().shards, 8); // next power of two
}

TEST(ProgramCacheTest, ClearDropsMemoryEntries)
{
    ProgramCache cache(cacheConfig(4, 2));
    cache.insert(key(1), makeProgram(1));
    cache.insert(key(2), makeProgram(2));
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.lookup(key(1)), nullptr);
}

class ProgramCacheDiskTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = std::filesystem::path(::testing::TempDir()) /
               ("qzz_cache_" +
                std::to_string(
                    ::testing::UnitTest::GetInstance()->random_seed()) +
                "_" + ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name());
        std::filesystem::remove_all(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::filesystem::path dir_;
};

TEST_F(ProgramCacheDiskTest, ArtifactTierSurvivesRestart)
{
    // A real compiled program exercises the full artifact structure
    // (layers, sides, metrics, supplemented identities).
    Rng rng(2);
    dev::Device device(graph::gridTopology(2, 3), dev::DeviceParams{},
                       rng);
    const core::Compiler compiler =
        core::CompilerBuilder(device)
            .pulseMethod(core::PulseMethod::Gaussian)
            .schedPolicy(core::SchedPolicy::Zzx)
            .build();
    core::CompileResult result = compiler.compile(ckt::qft(6));
    ASSERT_TRUE(result.ok());
    auto program = std::make_shared<const core::CompiledProgram>(
        std::move(result.program));
    const Fingerprint fp = key(42);

    {
        ProgramCache cache(cacheConfig(4, 1, dir_.string()));
        cache.insert(fp, program);
        EXPECT_EQ(cache.stats().disk_writes, 1u);
        EXPECT_TRUE(std::filesystem::exists(
            dir_ / (fp.hex() + ".qzzprog")));
    }

    // A fresh cache (fresh process, conceptually) reloads the
    // artifact bit-identically.
    ProgramCache restarted(cacheConfig(4, 1, dir_.string()));
    auto loaded = restarted.lookup(fp);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(restarted.stats().disk_hits, 1u);
    EXPECT_EQ(programArtifactString(*loaded),
              programArtifactString(*program));
    ASSERT_NE(loaded->library, nullptr);
    // Promoted into memory: the second lookup is an in-memory hit.
    EXPECT_EQ(restarted.lookup(fp), loaded);
    EXPECT_EQ(restarted.stats().hits, 1u);
}

TEST_F(ProgramCacheDiskTest, TornArtifactIsTreatedAsMiss)
{
    const Fingerprint fp = key(7);
    std::filesystem::create_directories(dir_);
    std::ofstream(dir_ / (fp.hex() + ".qzzprog")) << "qzzprog 999 junk";
    ProgramCache cache(
        cacheConfig(4, 1, dir_.string()));
    EXPECT_EQ(cache.lookup(fp), nullptr);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST_F(ProgramCacheDiskTest, CorruptCountFieldsAreMissesNotCrashes)
{
    // A negative count streams into size_t as 2^64-1: the parser
    // must reject it (bounded reads), never resize() to it.
    const auto program = makeProgram(3);
    std::string text = programArtifactString(*program);
    const std::string good = "g 0 1 0 0";
    ASSERT_NE(text.find(good), std::string::npos);
    text.replace(text.find(good), good.size(), "g 0 -1 0 0");
    std::istringstream in(text);
    EXPECT_FALSE(readProgramArtifact(in, false).has_value());

    // And through the cache's disk tier: a miss, not a dead worker.
    const Fingerprint fp = key(9);
    std::filesystem::create_directories(dir_);
    std::ofstream(dir_ / (fp.hex() + ".qzzprog")) << text;
    ProgramCache cache(cacheConfig(4, 1, dir_.string()));
    EXPECT_EQ(cache.lookup(fp), nullptr);

    // Huge-but-parseable counts are equally rejected.
    std::istringstream huge(
        "qzzprog 2\npulse_method Gaussian\nsched_policy ParSched\n"
        "calib_epoch 0\nnative 2 0 \n184467440737095516\n");
    EXPECT_FALSE(readProgramArtifact(huge, false).has_value());
}

TEST_F(ProgramCacheDiskTest, ArtifactRoundTripWithoutLibrary)
{
    const auto program = makeProgram(3);
    const std::string text = programArtifactString(*program);
    std::istringstream in(text);
    const auto back = readProgramArtifact(in, /*attach_library=*/false);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->library, nullptr);
    EXPECT_EQ(programArtifactString(*back), text);
}

TEST(ProgramCacheStressTest, ConcurrentInsertLookupEvict)
{
    // Hammer a small, heavily-sharded cache from many threads: the
    // per-shard LRUs must stay internally consistent and the capacity
    // bound must hold throughout.  Run under ASan/UBSan (unit label)
    // and TSan (service label CI job).
    ProgramCache cache(cacheConfig(16, 4));
    constexpr int kThreads = 8;
    constexpr int kOpsPerThread = 400;
    constexpr uint64_t kKeySpace = 64;

    std::vector<std::shared_ptr<const core::CompiledProgram>> programs;
    for (int i = 0; i < int(kKeySpace); ++i)
        programs.push_back(makeProgram(i));

    std::vector<std::thread> threads;
    std::atomic<uint64_t> lookups{0};
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            Rng rng(uint64_t(t) + 1);
            for (int op = 0; op < kOpsPerThread; ++op) {
                const uint64_t k =
                    uint64_t(rng.uniformInt(0, int(kKeySpace) - 1));
                const int kind = rng.uniformInt(0, 9);
                if (kind < 6) {
                    if (auto hit = cache.lookup(key(k))) {
                        EXPECT_EQ(hit->schedule.layers[0].duration,
                                  double(k));
                    }
                    lookups.fetch_add(1);
                } else if (kind < 9) {
                    cache.insert(key(k), programs[size_t(k)]);
                } else if (op % 100 == 99) {
                    cache.clear();
                }
                EXPECT_LE(cache.size(), 16u);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();

    const ProgramCacheStats s = cache.stats();
    EXPECT_EQ(s.hits + s.misses, lookups.load());
    EXPECT_LE(cache.size(), 16u);
}

} // namespace
} // namespace qzz::svc
