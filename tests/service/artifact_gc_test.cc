/**
 * @file
 * Artifact-tier GC unit tests: manifest round trips, version gating,
 * the three eviction bounds (age, stale epoch, byte capacity with
 * LRU-by-mtime), reconciliation (adopting unlisted files, dropping
 * dead manifest lines), and Fingerprint::fromHex.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>

#include "service/artifact_gc.h"
#include "service/fingerprint.h"

namespace qzz::svc {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

class ArtifactGcTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = (fs::temp_directory_path() /
                ("qzz_gc_test_" +
                 std::to_string(
                     ::testing::UnitTest::GetInstance()->random_seed()) +
                 "_" + ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name()))
                   .string();
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    /** A deterministic fingerprint for artifact @p i. */
    static Fingerprint
    fp(uint64_t i)
    {
        return Fingerprint{0x1000 + i, 0x2000 + i};
    }

    /** Write a fake artifact file: a real-looking 4-line header (the
     *  GC parses calib_epoch out of it when adopting) padded to
     *  @p bytes, with mtime @p age in the past. */
    void
    writeArtifact(const Fingerprint &key, size_t bytes, uint64_t epoch,
                  std::chrono::seconds age = 0s)
    {
        const fs::path path = fs::path(dir_) / (key.hex() + ".qzzprog");
        std::string content = "qzzprog 2\npulse_method Gaussian\n"
                              "sched_policy ZZXSched\ncalib_epoch " +
                              std::to_string(epoch) + "\n";
        if (content.size() < bytes)
            content.resize(bytes, '#');
        std::ofstream(path) << content;
        if (age.count() > 0)
            fs::last_write_time(
                path, fs::file_time_type::clock::now() - age);
    }

    bool
    artifactExists(const Fingerprint &key) const
    {
        return fs::exists(fs::path(dir_) / (key.hex() + ".qzzprog"));
    }

    std::string dir_;
};

TEST(FingerprintFromHexTest, RoundTripsAndRejectsMalformedInput)
{
    const Fingerprint key{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
    const auto parsed = Fingerprint::fromHex(key.hex());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, key);
    EXPECT_EQ(parsed->hex(), key.hex());

    EXPECT_FALSE(Fingerprint::fromHex(""));
    EXPECT_FALSE(Fingerprint::fromHex("abc"));                // short
    EXPECT_FALSE(Fingerprint::fromHex(key.hex() + "0"));      // long
    EXPECT_FALSE(Fingerprint::fromHex(
        "0123456789ABCDEF0123456789abcdef"));                 // uppercase
    EXPECT_FALSE(Fingerprint::fromHex(
        "0123456789abcdeg0123456789abcdef"));                 // non-hex
}

TEST_F(ArtifactGcTest, ManifestRoundTripsThroughAppendAndRead)
{
    ManifestEntry a{fp(1), 100, 1111, 3};
    ManifestEntry b{fp(2), 200, 2222, 4};
    ASSERT_TRUE(appendManifestEntry(dir_, a));
    ASSERT_TRUE(appendManifestEntry(dir_, b));

    const auto entries = readManifest(dir_);
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].fp, a.fp);
    EXPECT_EQ(entries[0].bytes, 100u);
    EXPECT_EQ(entries[0].mtime_ms, 1111);
    EXPECT_EQ(entries[0].calib_epoch, 3u);
    EXPECT_EQ(entries[1].fp, b.fp);
}

TEST_F(ArtifactGcTest, ManifestVersionMismatchReadsAsAbsent)
{
    std::ofstream(fs::path(dir_) / "manifest.jsonl")
        << "{\"qzz_manifest\":999}\n"
        << "{\"fp\":\"" << fp(1).hex()
        << "\",\"bytes\":10,\"mtime_ms\":1,\"calib_epoch\":0}\n";
    EXPECT_TRUE(readManifest(dir_).empty());
}

TEST_F(ArtifactGcTest, MalformedManifestLinesAreSkippedNotFatal)
{
    ASSERT_TRUE(appendManifestEntry(dir_, {fp(1), 100, 1111, 0}));
    {
        std::ofstream out(fs::path(dir_) / "manifest.jsonl",
                          std::ios::app);
        out << "not json at all\n";
        out << "{\"fp\":\"zzz\",\"bytes\":1,\"mtime_ms\":1,"
               "\"calib_epoch\":0}\n"; // bad fingerprint
        out << "{\"fp\":\"" << fp(2).hex() << "\"}\n"; // missing fields
    }
    ASSERT_TRUE(appendManifestEntry(dir_, {fp(3), 300, 3333, 0}));

    const auto entries = readManifest(dir_);
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].fp, fp(1));
    EXPECT_EQ(entries[1].fp, fp(3));
}

TEST_F(ArtifactGcTest, CapacityBoundEvictsLruByMtime)
{
    // Three 1000-byte artifacts; the middle-aged one was touched most
    // recently.  A 2000-byte capacity must drop exactly the
    // least-recently-used file.
    writeArtifact(fp(1), 1000, 0, /*age=*/300s); // oldest -> evicted
    writeArtifact(fp(2), 1000, 0, /*age=*/200s);
    writeArtifact(fp(3), 1000, 0, /*age=*/100s);

    ArtifactGcConfig config;
    config.capacity_bytes = 2000;
    ArtifactGc gc(dir_, config);
    const ArtifactGcStats stats = gc.run();

    EXPECT_EQ(stats.scanned, 3u);
    EXPECT_EQ(stats.evicted, 1u);
    EXPECT_EQ(stats.evicted_capacity, 1u);
    EXPECT_EQ(stats.bytes_before, 3000u);
    EXPECT_LE(stats.bytes_after, 2000u);
    EXPECT_FALSE(artifactExists(fp(1)));
    EXPECT_TRUE(artifactExists(fp(2)));
    EXPECT_TRUE(artifactExists(fp(3)));
    EXPECT_LE(gc.directoryBytes(), 2000u);

    // The compacted manifest lists exactly the survivors.
    const auto entries = readManifest(dir_);
    ASSERT_EQ(entries.size(), 2u);
}

TEST_F(ArtifactGcTest, MaxAgeEvictsOldArtifacts)
{
    writeArtifact(fp(1), 500, 0, /*age=*/3600s);
    writeArtifact(fp(2), 500, 0);

    ArtifactGcConfig config;
    config.max_age = 60s;
    ArtifactGc gc(dir_, config);
    const ArtifactGcStats stats = gc.run();

    EXPECT_EQ(stats.evicted_age, 1u);
    EXPECT_FALSE(artifactExists(fp(1)));
    EXPECT_TRUE(artifactExists(fp(2)));
}

TEST_F(ArtifactGcTest, StaleCalibEpochsAreRetired)
{
    // Epochs present: 1, 3, 4.  keep_epochs = 2 keeps epochs > 4 - 2,
    // i.e. 3 and 4; the epoch-1 artifact goes even though it is the
    // most recently used file.
    writeArtifact(fp(1), 500, 1);
    writeArtifact(fp(3), 500, 3, /*age=*/100s);
    writeArtifact(fp(4), 500, 4, /*age=*/200s);

    ArtifactGcConfig config;
    config.keep_epochs = 2;
    ArtifactGc gc(dir_, config);
    const ArtifactGcStats stats = gc.run();

    EXPECT_EQ(stats.max_epoch, 4u);
    EXPECT_EQ(stats.evicted_epoch, 1u);
    EXPECT_FALSE(artifactExists(fp(1)));
    EXPECT_TRUE(artifactExists(fp(3)));
    EXPECT_TRUE(artifactExists(fp(4)));
}

TEST_F(ArtifactGcTest, ReconcileAdoptsStraysAndDropsDeadLines)
{
    // fp(1): file without a manifest line (a writer that crashed
    // between rename and append) — adopted, with its calib_epoch
    // recovered from the artifact header.
    writeArtifact(fp(1), 400, 7);
    // fp(2): manifest line without a file (evicted by another
    // process) — dropped.
    ASSERT_TRUE(appendManifestEntry(dir_, {fp(2), 400, 1, 0}));

    ArtifactGc gc(dir_, ArtifactGcConfig{});
    const ArtifactGcStats stats = gc.run();

    EXPECT_EQ(stats.adopted, 1u);
    EXPECT_EQ(stats.dropped_lines, 1u);
    EXPECT_EQ(stats.evicted, 0u);

    const auto entries = readManifest(dir_);
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].fp, fp(1));
    EXPECT_EQ(entries[0].bytes, 400u);
    EXPECT_EQ(entries[0].calib_epoch, 7u);
}

TEST_F(ArtifactGcTest, MaybeCollectOnlyRunsWhenOverCapacity)
{
    writeArtifact(fp(1), 1000, 0);

    ArtifactGcConfig config;
    config.capacity_bytes = 4000;
    ArtifactGc gc(dir_, config);
    gc.maybeCollect(); // 1000 <= 4000: no pass
    EXPECT_EQ(gc.passes(), 0u);

    writeArtifact(fp(2), 2000, 0, /*age=*/100s);
    writeArtifact(fp(3), 2000, 0, /*age=*/200s);
    gc.maybeCollect(); // 5000 > 4000: one pass, evicts to fit
    EXPECT_EQ(gc.passes(), 1u);
    EXPECT_LE(gc.directoryBytes(), 4000u);
}

TEST_F(ArtifactGcTest, BackgroundThreadRunsPeriodicPasses)
{
    writeArtifact(fp(1), 100, 0);
    ArtifactGc gc(dir_, ArtifactGcConfig{});
    gc.start(5ms);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (gc.passes() == 0 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(1ms);
    gc.stop();
    EXPECT_GE(gc.passes(), 1u);
    EXPECT_EQ(gc.lastStats().scanned, 1u);
}

TEST_F(ArtifactGcTest, NonArtifactFilesAreNeverTouched)
{
    writeArtifact(fp(1), 5000, 0);
    std::ofstream(fs::path(dir_) / "notes.txt") << "keep me";

    ArtifactGcConfig config;
    config.capacity_bytes = 1; // evict everything evictable
    ArtifactGc gc(dir_, config);
    gc.run();

    EXPECT_FALSE(artifactExists(fp(1)));
    EXPECT_TRUE(fs::exists(fs::path(dir_) / "notes.txt"));
    EXPECT_TRUE(fs::exists(fs::path(dir_) / "manifest.jsonl"));
}

} // namespace
} // namespace qzz::svc
