/**
 * @file
 * Fingerprint unit tests: mixing quality basics, the DAG-canonical
 * circuit hash (invariance under dependency-preserving reorderings),
 * and sensitivity to every fingerprinted input.
 */

#include <gtest/gtest.h>

#include <set>

#include "circuit/benchmarks.h"
#include "graph/topologies.h"
#include "service/fingerprint.h"

namespace qzz::svc {
namespace {

dev::Device
makeDevice(uint64_t seed = 11)
{
    Rng rng(seed);
    return dev::Device(graph::gridTopology(2, 2), dev::DeviceParams{},
                       rng);
}

TEST(FingerprintBuilderTest, DeterministicAndOrderSensitive)
{
    const Fingerprint a =
        FingerprintBuilder().mix(uint64_t(1)).mix(uint64_t(2)).finish();
    const Fingerprint b =
        FingerprintBuilder().mix(uint64_t(1)).mix(uint64_t(2)).finish();
    const Fingerprint c =
        FingerprintBuilder().mix(uint64_t(2)).mix(uint64_t(1)).finish();
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(FingerprintBuilderTest, CountMakesPrefixesDistinct)
{
    const Fingerprint one =
        FingerprintBuilder().mix(uint64_t(0)).finish();
    const Fingerprint two =
        FingerprintBuilder().mix(uint64_t(0)).mix(uint64_t(0)).finish();
    EXPECT_NE(one, two);
    // Concatenation ambiguity: "ab" + "" vs "a" + "b".
    const Fingerprint ab = FingerprintBuilder()
                               .mix(std::string_view("ab"))
                               .mix(std::string_view(""))
                               .finish();
    const Fingerprint a_b = FingerprintBuilder()
                                .mix(std::string_view("a"))
                                .mix(std::string_view("b"))
                                .finish();
    EXPECT_NE(ab, a_b);
}

TEST(FingerprintBuilderTest, NegativeZeroCanonicalized)
{
    const Fingerprint pos = FingerprintBuilder().mix(0.0).finish();
    const Fingerprint neg = FingerprintBuilder().mix(-0.0).finish();
    EXPECT_EQ(pos, neg);
}

TEST(FingerprintBuilderTest, SingleBitAvalanches)
{
    // Flipping one input bit must change both output lanes.
    const Fingerprint a =
        FingerprintBuilder().mix(uint64_t(0x1234)).finish();
    const Fingerprint b =
        FingerprintBuilder().mix(uint64_t(0x1235)).finish();
    EXPECT_NE(a.hi, b.hi);
    EXPECT_NE(a.lo, b.lo);
}

TEST(FingerprintTest, HexIs32LowercaseDigits)
{
    const Fingerprint fp{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
    EXPECT_EQ(fp.hex(), "0123456789abcdeffedcba9876543210");
    EXPECT_EQ(Fingerprint{}.hex(), std::string(32, '0'));
}

TEST(FingerprintTest, StableGoldenValue)
{
    // The fingerprint is a persisted cache key (artifact file names):
    // this golden value pins the hash across refactors — if it
    // changes, bump kFingerprintVersion instead of silently
    // invalidating every stored artifact.
    ckt::QuantumCircuit c(2, "golden");
    c.h(0);
    c.cx(0, 1);
    c.rz(1, 0.25);
    EXPECT_EQ(fingerprintCircuit(c).hex(),
              "15ddc797395910d5ae024a3aeaac0b00");
}

TEST(FingerprintTest, CanonicalOrderIsReorderInvariant)
{
    ckt::QuantumCircuit a(2, "c");
    a.h(0);
    a.x(1);
    a.cx(0, 1);
    ckt::QuantumCircuit b(2, "c");
    b.x(1);
    b.h(0);
    b.cx(0, 1);
    const ckt::QuantumCircuit ca = canonicalGateOrder(a);
    const ckt::QuantumCircuit cb = canonicalGateOrder(b);
    ASSERT_EQ(ca.size(), cb.size());
    for (size_t i = 0; i < ca.size(); ++i) {
        EXPECT_EQ(ca.gates()[i].kind, cb.gates()[i].kind);
        EXPECT_EQ(ca.gates()[i].qubits, cb.gates()[i].qubits);
    }
    EXPECT_EQ(ca.name(), "c");
    EXPECT_EQ(ca.numQubits(), 2);
    // Canonicalization is idempotent.
    const ckt::QuantumCircuit cca = canonicalGateOrder(ca);
    for (size_t i = 0; i < ca.size(); ++i)
        EXPECT_EQ(ca.gates()[i].qubits, cca.gates()[i].qubits);
}

TEST(FingerprintTest, NameIsPartOfCircuitIdentity)
{
    // Artifacts serialize the display name, so it must key the cache
    // too or a cached program could differ from a cold compile in
    // its metadata bytes.
    ckt::QuantumCircuit a(2, "alpha");
    a.h(0);
    ckt::QuantumCircuit b(2, "beta");
    b.h(0);
    EXPECT_NE(fingerprintCircuit(a), fingerprintCircuit(b));
}

TEST(FingerprintTest, InvariantUnderDagPreservingReorder)
{
    // h(0) and x(1) touch disjoint qubits: swapping them preserves
    // the DAG, so the fingerprint must not change.
    ckt::QuantumCircuit a(2);
    a.h(0);
    a.x(1);
    a.cx(0, 1);
    ckt::QuantumCircuit b(2);
    b.x(1);
    b.h(0);
    b.cx(0, 1);
    EXPECT_EQ(fingerprintCircuit(a), fingerprintCircuit(b));
}

TEST(FingerprintTest, InterleavedReorderingStillInvariant)
{
    // Two independent chains, interleaved two different ways.
    ckt::QuantumCircuit a(4);
    a.h(0);
    a.cx(0, 1);
    a.h(2);
    a.cx(2, 3);
    a.x(1);
    a.x(3);
    ckt::QuantumCircuit b(4);
    b.h(2);
    b.cx(2, 3);
    b.x(3);
    b.h(0);
    b.cx(0, 1);
    b.x(1);
    EXPECT_EQ(fingerprintCircuit(a), fingerprintCircuit(b));
}

TEST(FingerprintTest, SensitiveToDependentOrder)
{
    // h(0) before vs after cx(0,1): different DAGs.
    ckt::QuantumCircuit a(2);
    a.h(0);
    a.cx(0, 1);
    ckt::QuantumCircuit b(2);
    b.cx(0, 1);
    b.h(0);
    EXPECT_NE(fingerprintCircuit(a), fingerprintCircuit(b));
}

TEST(FingerprintTest, SensitiveToGateParameters)
{
    ckt::QuantumCircuit a(1);
    a.rz(0, 0.5);
    ckt::QuantumCircuit b(1);
    b.rz(0, 0.5 + 1e-15);
    EXPECT_NE(fingerprintCircuit(a), fingerprintCircuit(b));
}

TEST(FingerprintTest, SensitiveToRegisterSize)
{
    ckt::QuantumCircuit a(2);
    a.h(0);
    ckt::QuantumCircuit b(3);
    b.h(0);
    EXPECT_NE(fingerprintCircuit(a), fingerprintCircuit(b));
}

TEST(FingerprintTest, DeviceCouplingsAndCoherenceMatter)
{
    Rng rng_a(11), rng_b(12);
    dev::Device a(graph::gridTopology(2, 2), dev::DeviceParams{}, rng_a);
    dev::Device b(graph::gridTopology(2, 2), dev::DeviceParams{}, rng_b);
    EXPECT_NE(fingerprintDevice(a), fingerprintDevice(b));

    const dev::Device c = a.withCoherence(50e3, 70e3);
    EXPECT_NE(fingerprintDevice(a), fingerprintDevice(c));
}

TEST(FingerprintTest, DeviceTopologyMatters)
{
    Rng rng(11);
    dev::Device grid(graph::gridTopology(2, 3), dev::DeviceParams{},
                     rng);
    Rng rng2(11);
    dev::Device ring(graph::ringTopology(6), dev::DeviceParams{}, rng2);
    EXPECT_NE(fingerprintDevice(grid), fingerprintDevice(ring));
}

TEST(FingerprintTest, OptionsMatter)
{
    core::CompileOptions a; // Pert + Zzx
    core::CompileOptions b;
    b.pulse = core::PulseMethod::Gaussian;
    core::CompileOptions c;
    c.sched = core::SchedPolicy::Par;
    core::CompileOptions d;
    d.zzx.nq_max = 3;
    const std::set<std::string> distinct = {
        fingerprintOptions(a).hex(), fingerprintOptions(b).hex(),
        fingerprintOptions(c).hex(), fingerprintOptions(d).hex()};
    EXPECT_EQ(distinct.size(), 4u);
}

TEST(FingerprintTest, RequestComposesAllThree)
{
    const dev::Device device = makeDevice();
    Rng crng(4);
    const ckt::QuantumCircuit circuit = ckt::hiddenShift(4, crng);
    const core::CompileOptions options;

    const Fingerprint base =
        fingerprintRequest(circuit, device, options);
    EXPECT_EQ(base, fingerprintRequest(circuit, device, options));

    core::CompileOptions other = options;
    other.sched = core::SchedPolicy::Par;
    EXPECT_NE(base, fingerprintRequest(circuit, device, other));

    const dev::Device device2 = makeDevice(12);
    EXPECT_NE(base, fingerprintRequest(circuit, device2, options));
}

TEST(FingerprintTest, NamedBenchmarkSeedDeterminism)
{
    // No global RNG anywhere: the same (family, n, seed) triple must
    // fingerprint identically across calls, and different seeds must
    // diverge for the random families.
    const auto a = ckt::namedBenchmark("QAOA", 6, 5);
    const auto b = ckt::namedBenchmark("QAOA", 6, 5);
    const auto c = ckt::namedBenchmark("QAOA", 6, 6);
    ASSERT_TRUE(a && b && c);
    EXPECT_EQ(fingerprintCircuit(*a), fingerprintCircuit(*b));
    EXPECT_NE(fingerprintCircuit(*a), fingerprintCircuit(*c));
    EXPECT_FALSE(ckt::namedBenchmark("NotAFamily", 6, 5).has_value());
}

} // namespace
} // namespace qzz::svc
