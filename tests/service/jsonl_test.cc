/**
 * @file
 * JSON-lines request parser tests: the accepted scalar grammar, the
 * rejected constructs (with positions), and typed accessors.
 */

#include <gtest/gtest.h>

#include "service/jsonl.h"

namespace qzz::svc {
namespace {

TEST(JsonlTest, ParsesFlatObjectOfAllScalarTypes)
{
    const auto obj = JsonObject::parse(
        R"({"s":"hello","n":-2.5e3,"i":42,"t":true,"f":false,"z":null})");
    ASSERT_TRUE(obj.has_value());
    EXPECT_EQ(obj->getString("s"), "hello");
    EXPECT_EQ(obj->getNumber("n"), -2500.0);
    EXPECT_EQ(obj->getInt("i"), 42);
    EXPECT_EQ(obj->getBool("t"), true);
    EXPECT_EQ(obj->getBool("f"), false);
    EXPECT_TRUE(obj->has("z"));
    EXPECT_EQ(obj->fields().size(), 6u);
}

TEST(JsonlTest, EmptyObjectAndSurroundingWhitespace)
{
    EXPECT_TRUE(JsonObject::parse("  { }  ").has_value());
    EXPECT_TRUE(JsonObject::parse("{}").has_value());
}

TEST(JsonlTest, StringEscapes)
{
    const auto obj =
        JsonObject::parse(R"({"k":"a\"b\\c\nd\te"})");
    ASSERT_TRUE(obj.has_value());
    EXPECT_EQ(obj->getString("k"), "a\"b\\c\nd\te");
}

TEST(JsonlTest, TypedAccessorsRejectWrongTypes)
{
    const auto obj = JsonObject::parse(R"({"s":"x","n":1.5})");
    ASSERT_TRUE(obj.has_value());
    EXPECT_FALSE(obj->getNumber("s").has_value());
    EXPECT_FALSE(obj->getString("n").has_value());
    EXPECT_FALSE(obj->getBool("n").has_value());
    EXPECT_FALSE(obj->getInt("n").has_value()); // not integral
    EXPECT_FALSE(obj->getString("missing").has_value());
}

TEST(JsonlTest, GetIntRejectsOutOfRangeValues)
{
    // Casting an out-of-int64-range double is UB; the accessor must
    // reject it, not invoke it.
    const auto obj = JsonObject::parse(
        R"({"huge":1e300,"neg":-1e300,"edge":9223372036854775808,"ok":42})");
    ASSERT_TRUE(obj.has_value());
    EXPECT_FALSE(obj->getInt("huge").has_value());
    EXPECT_FALSE(obj->getInt("neg").has_value());
    EXPECT_FALSE(obj->getInt("edge").has_value()); // 2^63 itself
    EXPECT_EQ(obj->getInt("ok"), 42);
}

TEST(JsonlTest, RejectsMalformedInputWithPosition)
{
    std::string error;
    EXPECT_FALSE(JsonObject::parse("", &error).has_value());
    EXPECT_FALSE(JsonObject::parse("[1,2]", &error).has_value());
    EXPECT_FALSE(JsonObject::parse(R"({"a":1)", &error).has_value());
    EXPECT_FALSE(
        JsonObject::parse(R"({"a":1} trailing)", &error).has_value());
    EXPECT_FALSE(
        JsonObject::parse(R"({"a":"unterminated)", &error).has_value());
    EXPECT_FALSE(
        JsonObject::parse(R"({"a":tru})", &error).has_value());
    EXPECT_NE(error.find("offset"), std::string::npos);
}

TEST(JsonlTest, RejectsNestingAndDuplicates)
{
    std::string error;
    EXPECT_FALSE(
        JsonObject::parse(R"({"a":{"b":1}})", &error).has_value());
    EXPECT_NE(error.find("nested"), std::string::npos);
    EXPECT_FALSE(JsonObject::parse(R"({"a":[1]})").has_value());
    EXPECT_FALSE(
        JsonObject::parse(R"({"a":1,"a":2})", &error).has_value());
}

TEST(JsonlTest, JsonEscapeRoundTripsThroughParser)
{
    const std::string nasty = "quote\" slash\\ newline\n tab\t";
    const std::string line =
        "{\"k\":\"" + jsonEscape(nasty) + "\"}";
    const auto obj = JsonObject::parse(line);
    ASSERT_TRUE(obj.has_value());
    EXPECT_EQ(obj->getString("k"), nasty);
}

TEST(JsonlTest, ControlCharactersEscapedPerRfc8259)
{
    // \b, \f and bare control bytes must come out as valid JSON
    // escapes, or response lines would be unparseable downstream.
    const std::string nasty = "bell\x07 back\b feed\f end";
    const std::string escaped = jsonEscape(nasty);
    EXPECT_EQ(escaped.find('\x07'), std::string::npos);
    EXPECT_NE(escaped.find("\\u0007"), std::string::npos);
    EXPECT_NE(escaped.find("\\b"), std::string::npos);
    EXPECT_NE(escaped.find("\\f"), std::string::npos);
    const auto obj =
        JsonObject::parse("{\"k\":\"" + escaped + "\"}");
    ASSERT_TRUE(obj.has_value());
    EXPECT_EQ(obj->getString("k"), nasty);
}

TEST(JsonlTest, UnicodeEscapesAsciiOnly)
{
    const auto ok = JsonObject::parse(R"({"k":"\u0041\u000a"})");
    ASSERT_TRUE(ok.has_value());
    EXPECT_EQ(ok->getString("k"), "A\n");
    // Non-ASCII codepoints and truncated escapes are rejected.
    EXPECT_FALSE(JsonObject::parse(R"({"k":"\u00e9"})").has_value());
    EXPECT_FALSE(JsonObject::parse(R"({"k":"\u12"})").has_value());
}

} // namespace
} // namespace qzz::svc
