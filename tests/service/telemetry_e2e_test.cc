/**
 * @file
 * End-to-end telemetry tests: one request over a unix-domain socket
 * with a client-supplied trace_id must produce (a) the echoed
 * trace_id in the response, (b) a complete span tree in the JSONL
 * trace log — queue wait, cache probe, every compiler pass, artifact
 * write, respond — with correct parent/child edges, and (c) matching
 * counter increments scraped from the GET /metrics endpoint.  Plus
 * the {"cmd":"metrics","format":"prometheus"} verb and the
 * histogram-derived latency percentiles' monotonicity at the service
 * level.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "circuit/benchmarks.h"
#include "graph/topologies.h"
#include "service/compile_service.h"
#include "service/server.h"
#include "service/transport.h"

namespace qzz::svc {
namespace {

namespace fs = std::filesystem;

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.rfind(prefix, 0) == 0;
}

int
connectUnix(const std::string &path)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

int
connectTcp(int port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(uint16_t(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
sendAll(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            ::send(fd, data.data() + off, data.size() - off, 0);
        if (n <= 0)
            return false;
        off += size_t(n);
    }
    return true;
}

/** Read one '\n'-terminated line; empty string on EOF. */
std::string
recvLine(int fd)
{
    std::string line;
    char c = 0;
    while (::recv(fd, &c, 1, 0) == 1) {
        if (c == '\n')
            return line;
        line += c;
    }
    return line;
}

/** Read until EOF (the scrape endpoint closes after one exchange). */
std::string
recvAll(int fd)
{
    std::string out;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0)
        out.append(buf, size_t(n));
    return out;
}

/** One full HTTP exchange against the metrics listener. */
std::string
httpGet(int port, const std::string &path)
{
    const int fd = connectTcp(port);
    if (fd < 0)
        return "";
    sendAll(fd, "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n"
                "Connection: close\r\n\r\n");
    const std::string response = recvAll(fd);
    ::close(fd);
    return response;
}

/** The fields of one trace span record this test cares about,
 *  extracted by substring (span records nest attrs, which the
 *  flat-only JsonObject parser rejects by design). */
struct SpanRecord
{
    std::string trace_id;
    uint64_t span_id = 0;
    uint64_t parent_id = 0;
    std::string name;
};

std::string
extractString(const std::string &line, const std::string &field)
{
    const std::string marker = "\"" + field + "\":\"";
    const auto pos = line.find(marker);
    if (pos == std::string::npos)
        return "";
    const auto start = pos + marker.size();
    return line.substr(start, line.find('"', start) - start);
}

uint64_t
extractUint(const std::string &line, const std::string &field)
{
    const std::string marker = "\"" + field + "\":";
    const auto pos = line.find(marker);
    if (pos == std::string::npos)
        return 0;
    return std::stoull(line.substr(pos + marker.size()));
}

std::vector<SpanRecord>
readSpans(const std::string &path)
{
    std::ifstream in(path);
    std::vector<SpanRecord> out;
    std::string line;
    while (std::getline(in, line)) {
        SpanRecord span;
        span.trace_id = extractString(line, "trace_id");
        span.span_id = extractUint(line, "span_id");
        span.parent_id = extractUint(line, "parent_id");
        span.name = extractString(line, "name");
        out.push_back(span);
    }
    return out;
}

class TelemetryE2eTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = (fs::temp_directory_path() /
                ("qzz_telemetry_e2e_" +
                 std::to_string(
                     ::testing::UnitTest::GetInstance()->random_seed()) +
                 "_" + ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name()))
                   .string();
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::string dir_;
};

TEST_F(TelemetryE2eTest, TraceIdSpanTreeAndScrapeAgree)
{
    const std::string socket_path = dir_ + "/server.sock";
    const std::string trace_path = dir_ + "/trace.jsonl";

    ServerConfig config;
    config.workers = 2;
    config.artifact_dir = dir_ + "/artifacts";
    config.trace_log = trace_path;
    config.metrics_listen = "tcp:127.0.0.1:0";
    Server server(config);
    ASSERT_GT(server.metricsPort(), 0);
    ASSERT_NE(server.traceLog(), nullptr);

    SocketTransportConfig tc;
    tc.listen = "unix:" + socket_path;
    SocketTransport transport(tc);
    std::thread serving([&] { server.serve(transport); });

    // One compile request carrying a client-supplied trace id.
    const std::string trace_id = "cafe1234cafe1234cafe1234cafe1234";
    const int fd = connectUnix(socket_path);
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(sendAll(fd, "{\"id\":\"r1\",\"benchmark\":\"QFT\","
                            "\"qubits\":3,\"trace_id\":\"" +
                                trace_id + "\"}\n{\"cmd\":\"quit\"}\n"));
    const std::string response = recvLine(fd);
    EXPECT_EQ(recvLine(fd), ""); // quit closed the session
    ::close(fd);

    // (a) The response echoes the client's trace id.
    EXPECT_TRUE(startsWith(response, "{\"id\":\"r1\",\"ok\":true,"))
        << response;
    EXPECT_NE(response.find("\"trace_id\":\"" + trace_id + "\""),
              std::string::npos)
        << response;

    // (b) The trace log holds the complete span tree for that id:
    // request -> {queue_wait, cache_probe, compile -> {route, lower,
    // schedule, pulses}, artifact_write, respond}.  The session has
    // fully drained (EOF above), so every span is flushed.
    std::map<std::string, SpanRecord> by_name;
    for (const SpanRecord &span : readSpans(trace_path)) {
        EXPECT_EQ(span.trace_id, trace_id) << span.name;
        EXPECT_NE(span.span_id, 0u) << span.name;
        by_name[span.name] = span;
    }
    ASSERT_TRUE(by_name.count("request"));
    const SpanRecord &root = by_name["request"];
    EXPECT_EQ(root.parent_id, 0u);
    for (const char *child :
         {"queue_wait", "cache_probe", "artifact_write", "respond"}) {
        ASSERT_TRUE(by_name.count(child)) << child;
        EXPECT_EQ(by_name[child].parent_id, root.span_id) << child;
    }
    ASSERT_TRUE(by_name.count("compile"));
    const SpanRecord &compile = by_name["compile"];
    EXPECT_EQ(compile.parent_id, root.span_id);
    for (const char *pass : {"route", "lower", "schedule", "pulses"}) {
        ASSERT_TRUE(by_name.count(pass)) << pass;
        EXPECT_EQ(by_name[pass].parent_id, compile.span_id) << pass;
    }
    EXPECT_EQ(by_name.size(), 10u); // nothing unexpected in the tree

    // (c) GET /metrics sees the same single request in its counters.
    const std::string scrape =
        httpGet(server.metricsPort(), "/metrics");
    EXPECT_TRUE(startsWith(scrape, "HTTP/1.1 200 OK\r\n")) << scrape;
    EXPECT_NE(scrape.find("Content-Type: text/plain; version=0.0.4; "
                          "charset=utf-8\r\n"),
              std::string::npos)
        << scrape;
    for (const char *sample :
         {"qzz_service_requests_submitted_total 1",
          "qzz_service_requests_completed_total 1",
          "qzz_service_request_latency_ms_count 1",
          "qzz_service_cache_probe_misses_total 1",
          // 2, not 1: the cold path probes once before compiling and
          // re-checks under the coalesce lock.
          "qzz_cache_misses_total 2", "qzz_cache_insertions_total 1",
          "qzz_cache_disk_writes_total 1", "qzz_service_workers 2"}) {
        EXPECT_NE(scrape.find(std::string(sample) + "\n"),
                  std::string::npos)
            << sample << "\n"
            << scrape;
    }

    // Unknown paths get a 404, not a scrape payload.
    EXPECT_TRUE(startsWith(httpGet(server.metricsPort(), "/nope"),
                           "HTTP/1.1 404 Not Found\r\n"));

    transport.shutdown();
    serving.join();
}

TEST_F(TelemetryE2eTest, MetricsVerbServesPrometheusFormat)
{
    ServerConfig config;
    config.workers = 2;
    Server server(config);
    std::istringstream in(
        "{\"id\":\"a\",\"benchmark\":\"QFT\",\"qubits\":3}\n"
        "{\"cmd\":\"metrics\",\"format\":\"prometheus\"}\n"
        "{\"cmd\":\"metrics\"}\n"
        "{\"cmd\":\"quit\"}\n");
    std::ostringstream out;
    StreamConnection conn(in, out);
    EXPECT_TRUE(server.runSession(conn));

    std::vector<std::string> lines;
    {
        std::istringstream split(out.str());
        std::string line;
        while (std::getline(split, line))
            lines.push_back(line);
    }
    ASSERT_EQ(lines.size(), 3u);
    // The exposition body rides as one escaped JSON string field; the
    // JSON metrics verb is byte-compatible with what it always was.
    EXPECT_TRUE(startsWith(lines[1],
                           "{\"metrics\":true,\"format\":"
                           "\"prometheus\",\"exposition\":\"# HELP "))
        << lines[1];
    EXPECT_NE(lines[1].find("qzz_service_requests_submitted_total 1\\n"),
              std::string::npos)
        << lines[1];
    EXPECT_NE(lines[1].find("# TYPE qzz_service_request_latency_ms "
                            "histogram\\n"),
              std::string::npos)
        << lines[1];
    EXPECT_TRUE(startsWith(lines[2], "{\"metrics\":true,\"submitted\":1,"))
        << lines[2];
}

TEST_F(TelemetryE2eTest, ResponsesCarryMintedTraceIdWithoutTracing)
{
    // No trace log configured: responses still carry a (minted)
    // trace id for client-side correlation, and no span file appears.
    ServerConfig config;
    config.workers = 1;
    Server server(config);
    std::istringstream in(
        "{\"id\":\"a\",\"benchmark\":\"QFT\",\"qubits\":3}\n"
        "{\"cmd\":\"quit\"}\n");
    std::ostringstream out;
    StreamConnection conn(in, out);
    EXPECT_TRUE(server.runSession(conn));
    const std::string line = out.str();
    const auto pos = line.find("\"trace_id\":\"");
    ASSERT_NE(pos, std::string::npos) << line;
    const std::string id = line.substr(pos + 12, 32);
    EXPECT_EQ(id.find_first_not_of("0123456789abcdef"),
              std::string::npos)
        << id;
}

// The regression the telemetry plane fixes at the service level: the
// old ring-reservoir percentile estimator could report p50 > p95
// under skewed load.  The histogram-derived percentiles come from one
// snapshot and are monotone by construction.
TEST_F(TelemetryE2eTest, ServicePercentilesAreMonotone)
{
    CompileServiceConfig config;
    config.num_workers = 2;
    CompileService service(config);
    Rng rng(2);
    const auto device = std::make_shared<const dev::Device>(
        graph::gridTopology(2, 3), dev::DeviceParams{}, rng);

    // A skewed latency mix: a few cold compiles of distinct circuits,
    // then a burst of near-instant cache hits against the first.
    std::vector<RequestHandle> handles;
    for (int i = 0; i < 4; ++i) {
        CompileRequest request;
        request.circuit =
            *ckt::namedBenchmark("QFT", 3, uint64_t(i + 1));
        request.device = device;
        request.request.seed = uint64_t(i + 1);
        handles.push_back(service.submit(std::move(request)));
    }
    for (RequestHandle &h : handles)
        EXPECT_TRUE(h.get().ok());
    for (int i = 0; i < 40; ++i) {
        CompileRequest request;
        request.circuit = *ckt::namedBenchmark("QFT", 3, 1);
        request.device = device;
        request.request.seed = 1;
        EXPECT_TRUE(service.submit(std::move(request)).get().ok());
    }

    const MetricsSnapshot m = service.metrics();
    EXPECT_EQ(m.submitted, 44u);
    EXPECT_GT(m.latency_p50_ms, 0.0);
    EXPECT_LE(m.latency_p50_ms, m.latency_p95_ms);
    EXPECT_LE(m.latency_p95_ms, m.latency_p99_ms);
    service.shutdown(true);
}

} // namespace
} // namespace qzz::svc
