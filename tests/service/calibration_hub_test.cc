/**
 * @file
 * CalibrationHub tests: update validation (monotonic epochs, topology
 * agreement, physicality), subscriber event fan-out, the watch
 * directory, and the full server-level epoch-roll drill — submit,
 * roll via {"cmd":"calibrate"}, distinct fingerprint + miss-then-hit,
 * in-memory sweep, stale-epoch artifact eviction, and calib_epoch
 * event delivery (stream transcript and over a real socket).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/rng.h"
#include "device/calibration.h"
#include "device/device.h"
#include "graph/topologies.h"
#include "service/calibration_hub.h"
#include "service/jsonl.h"
#include "service/program_cache.h"
#include "service/server.h"
#include "service/transport.h"

namespace qzz::svc {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

/** A valid snapshot for @p topo at @p epoch, labelled by epoch. */
dev::Calibration
snapshotFor(const graph::Topology &topo, uint64_t sample_seed,
            uint64_t epoch)
{
    Rng rng(sample_seed);
    dev::Calibration c =
        dev::Calibration::sampled(topo, dev::DeviceParams{}, rng);
    c.epoch = epoch;
    c.id = "push-" + std::to_string(epoch);
    return c;
}

/** The snapshot as the escaped string field of a calibrate record. */
std::string
calibrateLine(const dev::Calibration &calib, const std::string &extra)
{
    return "{\"cmd\":\"calibrate\",\"snapshot\":\"" +
           jsonEscape(dev::calibrationJsonString(calib)) + "\"" +
           extra + "}\n";
}

std::vector<std::string>
lines(const std::string &text)
{
    std::vector<std::string> out;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        out.push_back(line);
    return out;
}

std::pair<std::vector<std::string>, bool>
runTranscript(const std::string &input, ServerConfig config = {})
{
    if (config.workers == 0)
        config.workers = 2;
    Server server(config);
    std::istringstream in(input);
    std::ostringstream out;
    StreamConnection conn(in, out);
    const bool quit = server.runSession(conn);
    return {lines(out.str()), quit};
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.rfind(prefix, 0) == 0;
}

TEST(TopologyFromNameTest, RoundTripsEveryFamily)
{
    const graph::Topology originals[] = {
        graph::gridTopology(2, 3),
        graph::triangulatedGridTopology(2, 4),
        graph::heavyHexTopology(1, 1),
        graph::lineTopology(6),
        graph::ringTopology(8),
    };
    for (const graph::Topology &t : originals) {
        const auto back = topologyFromName(t.name);
        ASSERT_TRUE(back.has_value()) << t.name;
        EXPECT_EQ(back->name, t.name);
        EXPECT_EQ(back->g.numVertices(), t.g.numVertices()) << t.name;
        EXPECT_EQ(back->g.numEdges(), t.g.numEdges()) << t.name;
    }
}

TEST(TopologyFromNameTest, RejectsMalformedNames)
{
    const char *bad[] = {
        "",          "torus-3",    "grid-3",     "grid-0x3",
        "grid-3x",   "grid-x3",    "grid-3x-2",  "line-",
        "line-0",    "line-12a",   "ring-9999999999",
        "grid-3x3 ", "heavyhex-1",
    };
    for (const char *name : bad)
        EXPECT_FALSE(topologyFromName(name).has_value()) << name;
}

TEST(CalibrationHubTest, ApplyValidatesMonotonicEpochsAndTopology)
{
    CalibrationHubConfig hc;
    hc.keep_epochs = 1;
    CalibrationHub hub(hc, nullptr, nullptr);
    const auto grid = [] { return graph::gridTopology(2, 3); };

    // Epoch 0 never applies: the boot generation is implicitly 0.
    const auto u0 =
        hub.apply(grid(), 7, snapshotFor(grid(), 7, 0), "test");
    EXPECT_FALSE(u0.applied);
    EXPECT_EQ(u0.error, "stale epoch 0 (live is 0)");
    EXPECT_EQ(u0.device_key, "grid-2x3#7");

    const auto u1 =
        hub.apply(grid(), 7, snapshotFor(grid(), 7, 1), "test");
    EXPECT_TRUE(u1.applied) << u1.error;
    EXPECT_EQ(u1.epoch, 1u);
    EXPECT_EQ(hub.currentEpoch("grid-2x3#7"), 1u);
    const auto live = hub.liveDevice("grid-2x3", 7);
    ASSERT_TRUE(live != nullptr);
    EXPECT_EQ(live->calibration().epoch, 1u);
    EXPECT_EQ(live->calibration().id, "push-1");
    // Other seeds / topologies are untouched.
    EXPECT_TRUE(hub.liveDevice("grid-2x3", 8) == nullptr);
    EXPECT_TRUE(hub.liveDevice("line-6", 7) == nullptr);

    // Replaying the same epoch is stale.
    const auto u1b =
        hub.apply(grid(), 7, snapshotFor(grid(), 7, 1), "test");
    EXPECT_FALSE(u1b.applied);
    EXPECT_EQ(u1b.error, "stale epoch 1 (live is 1)");

    // A snapshot for the wrong topology is rejected outright.
    const auto mismatch = hub.apply(
        grid(), 7, snapshotFor(graph::lineTopology(6), 7, 2), "test");
    EXPECT_FALSE(mismatch.applied);
    EXPECT_NE(mismatch.error.find("does not match topology"),
              std::string::npos)
        << mismatch.error;

    // Unphysical coherence times (T2 > 2 T1) are rejected.
    dev::Calibration unphysical = snapshotFor(grid(), 7, 2);
    unphysical.t1[0] = 100.0;
    unphysical.t2[0] = 300.0;
    const auto phys = hub.apply(grid(), 7, unphysical, "test");
    EXPECT_FALSE(phys.applied);
    EXPECT_NE(phys.error.find("T2 <= 2 T1"), std::string::npos)
        << phys.error;

    const CalibrationHubStats s = hub.stats();
    EXPECT_EQ(s.epochs_applied, 1u);
    EXPECT_EQ(s.updates_rejected, 4u);
    ASSERT_EQ(s.current.size(), 1u);
    EXPECT_EQ(s.current[0].first, "grid-2x3#7");
    EXPECT_EQ(s.current[0].second, 1u);
}

TEST(CalibrationHubTest, SubscribersReceiveEventFrames)
{
    CalibrationHub hub({}, nullptr, nullptr);
    const auto line4 = [] { return graph::lineTopology(4); };

    std::vector<std::string> got;
    const uint64_t token =
        hub.subscribe([&](const std::string &line) {
            got.push_back(line);
        });
    EXPECT_EQ(hub.subscriberCount(), 1u);

    // Rejections do not notify.
    hub.apply(line4(), 3, snapshotFor(line4(), 3, 0), "test");
    EXPECT_TRUE(got.empty());

    hub.apply(line4(), 3, snapshotFor(line4(), 3, 1), "test");
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0],
              "{\"event\":\"calib_epoch\",\"device\":\"line-4#3\","
              "\"epoch\":1,\"calib_id\":\"push-1\","
              "\"entries_invalidated\":0,\"source\":\"test\"}\n");

    hub.unsubscribe(token);
    EXPECT_EQ(hub.subscriberCount(), 0u);
    hub.apply(line4(), 3, snapshotFor(line4(), 3, 2), "test");
    EXPECT_EQ(got.size(), 1u); // no event after unsubscribe
}

TEST(CalibrationHubTest, WatchDirAppliesDroppedSnapshots)
{
    const fs::path dir =
        fs::temp_directory_path() / "qzz_hub_watch_test";
    fs::remove_all(dir);
    fs::create_directories(dir);

    CalibrationHubConfig hc;
    hc.watch_dir = dir.string();
    CalibrationHub hub(hc, nullptr, nullptr);
    const auto grid = [] { return graph::gridTopology(2, 3); };

    // Nothing to do on an empty directory.
    EXPECT_EQ(hub.pollWatchDir(), 0u);

    // Drop an epoch-1 snapshot named "<topology>@<seed>.qzzcalib".
    ASSERT_TRUE(dev::saveCalibrationFile(
        snapshotFor(grid(), 7, 1),
        (dir / "grid-2x3@7.qzzcalib").string()));
    EXPECT_EQ(hub.pollWatchDir(), 1u);
    EXPECT_EQ(hub.currentEpoch("grid-2x3#7"), 1u);
    // An unchanged file is not reprocessed.
    EXPECT_EQ(hub.pollWatchDir(), 0u);

    // A replaced file with a newer epoch rolls again.  (Sleep past
    // the watcher's millisecond mtime granularity.)
    std::this_thread::sleep_for(10ms);
    ASSERT_TRUE(dev::saveCalibrationFile(
        snapshotFor(grid(), 7, 2),
        (dir / "grid-2x3@7.qzzcalib").string()));
    EXPECT_EQ(hub.pollWatchDir(), 1u);
    EXPECT_EQ(hub.currentEpoch("grid-2x3#7"), 2u);

    // Bad device names and torn files count as watch errors — once
    // per file version, not once per tick.
    {
        std::ofstream torn((dir / "grid-2x3@9.qzzcalib").string());
        torn << dev::calibrationJsonString(snapshotFor(grid(), 9, 1))
                    .substr(0, 40);
    }
    {
        std::ofstream noseed((dir / "noseed.qzzcalib").string());
        noseed << dev::calibrationJsonString(snapshotFor(grid(), 7, 3));
    }
    EXPECT_EQ(hub.pollWatchDir(), 0u);
    EXPECT_EQ(hub.pollWatchDir(), 0u);
    const CalibrationHubStats s = hub.stats();
    EXPECT_EQ(s.watch_loads, 2u);
    EXPECT_EQ(s.watch_errors, 2u);
    EXPECT_EQ(s.epochs_applied, 2u);
    EXPECT_GE(s.last_watch_latency_ms, 0.0);

    fs::remove_all(dir);
}

TEST(CalibrationHubTest, ServerEpochRollDrill)
{
    const fs::path dir =
        fs::temp_directory_path() / "qzz_hub_drill_artifacts";
    fs::remove_all(dir);
    fs::create_directories(dir);

    ServerConfig config;
    config.artifact_dir = dir.string();
    config.gc_keep_epochs = 1;

    const std::string submit =
        "{\"id\":\"%\",\"benchmark\":\"QFT\",\"qubits\":4,"
        "\"topology\":\"line\"}\n";
    const auto req = [&](const std::string &id) {
        std::string s = submit;
        s.replace(s.find('%'), 1, id);
        return s;
    };
    const dev::Calibration push =
        snapshotFor(graph::lineTopology(4), 99, 1);

    // The metrics records after "a" and "c" are deterministic
    // barriers: control records wait for the writer to drain, so the
    // preceding compile is fully cached before the follow-up submits
    // (otherwise it may coalesce onto the in-flight compile instead
    // of hitting the cache).
    const auto [out, quit] = runTranscript(
        req("a") + "{\"cmd\":\"metrics\"}\n" + req("b") +
            "{\"cmd\":\"hello\",\"calib_events\":true}\n" +
            calibrateLine(push, ",\"topology\":\"line\",\"size\":4,"
                                "\"device_seed\":7") +
            req("c") + "{\"cmd\":\"metrics\"}\n" + req("d") +
            "{\"cmd\":\"metrics\"}\n"
            "{\"cmd\":\"gc\"}\n{\"cmd\":\"quit\"}\n",
        config);
    EXPECT_TRUE(quit);
    // a, metrics, b, hello, event, calibrate, c, metrics, d,
    // metrics, gc.
    ASSERT_EQ(out.size(), 11u);

    const auto fpOf = [](const std::string &line) {
        const auto pos = line.find("\"fingerprint\":\"");
        EXPECT_NE(pos, std::string::npos) << line;
        return line.substr(pos + 15, 32);
    };

    // Pre-roll: compile once, hit once, programs carry epoch 0.
    EXPECT_NE(out[0].find("\"outcome\":\"Compiled\""),
              std::string::npos)
        << out[0];
    EXPECT_NE(out[0].find("\"calib_epoch\":0"), std::string::npos);
    EXPECT_TRUE(startsWith(out[1], "{\"metrics\":true,")) << out[1];
    EXPECT_NE(out[2].find("\"outcome\":\"CacheHit\""),
              std::string::npos)
        << out[2];

    // The capability handshake confirms the subscription.
    EXPECT_NE(out[3].find("\"calib_events\":true"), std::string::npos)
        << out[3];

    // The roll: event frame first (pushed to this subscribed
    // session), then the calibrate response.  The epoch-0 in-memory
    // entry is swept (gc_keep_epochs = 1).
    EXPECT_EQ(out[4],
              "{\"event\":\"calib_epoch\",\"device\":\"line-4#7\","
              "\"epoch\":1,\"calib_id\":\"push-1\","
              "\"entries_invalidated\":1,\"source\":\"calibrate\"}");
    EXPECT_TRUE(startsWith(out[5],
                           "{\"calibrate\":true,\"applied\":true,"
                           "\"device\":\"line-4#7\",\"epoch\":1,"
                           "\"entries_invalidated\":1,"))
        << out[5];

    // Post-roll: identical submissions fingerprint differently,
    // recompile exactly once, and carry the new epoch.
    EXPECT_NE(out[6].find("\"outcome\":\"Compiled\""),
              std::string::npos)
        << out[6];
    EXPECT_NE(out[6].find("\"calib_epoch\":1"), std::string::npos);
    EXPECT_NE(out[8].find("\"outcome\":\"CacheHit\""),
              std::string::npos)
        << out[8];
    EXPECT_EQ(fpOf(out[0]), fpOf(out[2]));
    EXPECT_EQ(fpOf(out[6]), fpOf(out[8]));
    EXPECT_NE(fpOf(out[0]), fpOf(out[6]));

    // Metrics expose the hub counters and the live epoch per device.
    EXPECT_NE(out[9].find("\"calib_epochs_applied\":1"),
              std::string::npos)
        << out[9];
    EXPECT_NE(out[9].find("\"calib_entries_invalidated\":1"),
              std::string::npos);
    EXPECT_NE(out[9].find("\"calib_current\":{\"line-4#7\":1}"),
              std::string::npos)
        << out[9];

    // The explicit GC pass retires the stale epoch-0 artifact now
    // that an epoch-1 artifact exists on disk.
    EXPECT_NE(out[10].find("\"evicted_epoch\":1"), std::string::npos)
        << out[10];

    fs::remove_all(dir);
}

TEST(CalibrationHubTest, CalibrateVerbRejectsBadInput)
{
    const dev::Calibration stale =
        snapshotFor(graph::lineTopology(4), 99, 0);
    const dev::Calibration wrong_topo =
        snapshotFor(graph::lineTopology(4), 99, 1);
    const auto [out, quit] = runTranscript(
        "{\"cmd\":\"calibrate\"}\n"
        "{\"cmd\":\"calibrate\",\"snapshot\":\"{}\"}\n" +
        calibrateLine(stale, ",\"topology\":\"line\",\"size\":4") +
        calibrateLine(wrong_topo,
                      ",\"topology\":\"ring\",\"size\":4") +
        "{\"cmd\":\"quit\"}\n");
    EXPECT_TRUE(quit);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0],
              "{\"calibrate\":true,\"applied\":false,\"error\":"
              "\"missing 'snapshot' (calibration JSON document as a "
              "string)\"}");
    EXPECT_TRUE(startsWith(out[1],
                           "{\"calibrate\":true,\"applied\":false,"
                           "\"error\":\"bad snapshot: "))
        << out[1];
    EXPECT_NE(out[2].find("\"applied\":false"), std::string::npos);
    EXPECT_NE(out[2].find("stale epoch 0 (live is 0)"),
              std::string::npos)
        << out[2];
    EXPECT_NE(out[3].find("\"applied\":false"), std::string::npos);
    EXPECT_NE(out[3].find("does not match topology"),
              std::string::npos)
        << out[3];
}

// ---------------------------------------------------------------------------
// Socket-level event delivery
// ---------------------------------------------------------------------------

int
connectTcp(int port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(uint16_t(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
sendAll(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            ::send(fd, data.data() + off, data.size() - off, 0);
        if (n <= 0)
            return false;
        off += size_t(n);
    }
    return true;
}

std::string
recvLine(int fd)
{
    std::string line;
    char c = 0;
    while (::recv(fd, &c, 1, 0) == 1) {
        if (c == '\n')
            return line;
        line += c;
    }
    return line;
}

TEST(CalibrationHubTest, CalibEventReachesSubscribedSocketClient)
{
    SocketTransportConfig tc;
    tc.listen = "tcp:127.0.0.1:0";
    SocketTransport transport(tc);
    ASSERT_GT(transport.port(), 0);

    ServerConfig config;
    config.workers = 2;
    Server server(config);
    std::thread serving([&] { server.serve(transport); });

    // Client A subscribes via the hello capability.  Receiving the
    // hello response proves the subscription is registered.
    const int a = connectTcp(transport.port());
    ASSERT_GE(a, 0);
    ASSERT_TRUE(
        sendAll(a, "{\"cmd\":\"hello\",\"calib_events\":true}\n"));
    const std::string hello = recvLine(a);
    EXPECT_NE(hello.find("\"calib_events\":true"), std::string::npos)
        << hello;

    // Client B pushes the roll; its response proves apply() finished,
    // which means the event frame is already queued on A.
    const int b = connectTcp(transport.port());
    ASSERT_GE(b, 0);
    const dev::Calibration push =
        snapshotFor(graph::lineTopology(4), 99, 1);
    ASSERT_TRUE(sendAll(
        b, calibrateLine(push, ",\"topology\":\"line\",\"size\":4,"
                               "\"device_seed\":7") +
               "{\"cmd\":\"quit\"}\n"));
    const std::string calibrated = recvLine(b);
    EXPECT_TRUE(startsWith(calibrated,
                           "{\"calibrate\":true,\"applied\":true,"))
        << calibrated;

    // A's next read delivers the event frame BEFORE the response to
    // its next request, and that response compiles against epoch 1.
    ASSERT_TRUE(sendAll(a, "{\"id\":\"x\",\"benchmark\":\"QFT\","
                           "\"qubits\":4,\"topology\":\"line\"}\n"
                           "{\"cmd\":\"quit\"}\n"));
    const std::string event = recvLine(a);
    EXPECT_TRUE(startsWith(event,
                           "{\"event\":\"calib_epoch\",\"device\":"
                           "\"line-4#7\",\"epoch\":1,"))
        << event;
    const std::string response = recvLine(a);
    EXPECT_TRUE(startsWith(response, "{\"id\":\"x\",\"ok\":true,"))
        << response;
    EXPECT_NE(response.find("\"calib_epoch\":1"), std::string::npos)
        << response;

    ::close(a);
    ::close(b);
    transport.shutdown();
    serving.join();
}

} // namespace
} // namespace qzz::svc
