/**
 * @file
 * Calibration-snapshot compatibility tests at the service level:
 *
 *  - a device built from a uniform Calibration compiles to programs
 *    byte-identical (programArtifactString) to the historical
 *    DeviceParams construction path;
 *  - the request fingerprint is sensitive to every per-qubit /
 *    per-edge calibration field and to the snapshot epoch, and to
 *    nothing else (the id is provenance only) — golden-pinned;
 *  - two snapshot epochs cache separately in CompileService.
 */

#include <gtest/gtest.h>

#include "circuit/benchmarks.h"
#include "common/units.h"
#include "graph/topologies.h"
#include "service/artifact.h"
#include "service/compile_service.h"
#include "service/fingerprint.h"

namespace qzz::svc {
namespace {

dev::Device
shimDevice(uint64_t seed = 7)
{
    Rng rng(seed);
    return dev::Device(graph::gridTopology(2, 3), dev::DeviceParams{},
                       rng);
}

dev::Device
snapshotDevice(uint64_t seed = 7)
{
    Rng rng(seed);
    return dev::Device(
        graph::gridTopology(2, 3),
        dev::Calibration::sampled(graph::gridTopology(2, 3),
                                  dev::DeviceParams{}, rng));
}

ckt::QuantumCircuit
benchmark(int qubits = 6, uint64_t seed = 3)
{
    auto circuit = ckt::namedBenchmark("QFT", qubits, seed);
    EXPECT_TRUE(circuit.has_value());
    return *circuit;
}

TEST(CalibrationCompatTest, UniformSnapshotCompilesBitIdentical)
{
    // The acceptance bar of the refactor: the snapshot path must not
    // perturb a single byte of the compiled program relative to the
    // historical uniform DeviceParams path.
    const dev::Device shim = shimDevice();
    const dev::Device snap = snapshotDevice();
    EXPECT_EQ(fingerprintDevice(shim), fingerprintDevice(snap));

    const ckt::QuantumCircuit circuit = benchmark();
    for (const core::SchedPolicy sched :
         {core::SchedPolicy::Par, core::SchedPolicy::Zzx}) {
        core::CompileOptions opt;
        opt.pulse = core::PulseMethod::Pert;
        opt.sched = sched;
        const core::Compiler a =
            core::CompilerBuilder(shim).options(opt).build();
        const core::Compiler b =
            core::CompilerBuilder(snap).options(opt).build();
        const core::CompileResult ra = a.compile(circuit);
        const core::CompileResult rb = b.compile(circuit);
        ASSERT_TRUE(ra.ok() && rb.ok());
        EXPECT_EQ(programArtifactString(ra.program),
                  programArtifactString(rb.program));
    }

    // The legacy throwing shim rides the same pipeline.
    const core::CompiledProgram legacy =
        core::compileForDevice(circuit, shim, core::CompileOptions{});
    const core::CompiledProgram snapped =
        core::compileForDevice(circuit, snap, core::CompileOptions{});
    EXPECT_EQ(programArtifactString(legacy),
              programArtifactString(snapped));
}

TEST(CalibrationCompatTest, FingerprintSensitiveToEveryCalibField)
{
    // Finite uniform coherence, so single-field mutations below stay
    // physical (T2 <= 2 T1).
    const dev::Device base =
        snapshotDevice().withCoherence(us(100.0), us(100.0));
    const Fingerprint fp = fingerprintDevice(base);

    auto mutated = [&](auto &&mutate) {
        dev::Calibration calib = base.calibration();
        mutate(calib);
        return fingerprintDevice(base.withCalibration(calib));
    };

    // One qubit's T1 / T2 / anharmonicity.
    EXPECT_NE(fp, mutated([](dev::Calibration &c) {
                  c.t1[2] = us(150.0);
              }));
    EXPECT_NE(fp, mutated([](dev::Calibration &c) {
                  c.t2[0] = us(90.0);
              }));
    EXPECT_NE(fp, mutated([](dev::Calibration &c) {
                  c.anharmonicity[5] *= 1.0 + 1e-12;
              }));
    // One edge's ZZ, by the smallest representable nudge.
    EXPECT_NE(fp, mutated([](dev::Calibration &c) {
                  c.zz[1] = std::nextafter(c.zz[1], 1.0);
              }));
    // The epoch alone distinguishes recalibrations even when every
    // physical number is identical.
    EXPECT_NE(fp, mutated([](dev::Calibration &c) { ++c.epoch; }));
    // The sampling moments are part of the snapshot.
    EXPECT_NE(fp, mutated([](dev::Calibration &c) {
                  c.coupling_stddev *= 2.0;
              }));
    // The id is a provenance label, NOT physics: relabelling must not
    // invalidate cached programs.
    EXPECT_EQ(fp, mutated([](dev::Calibration &c) {
                  c.id = "relabelled";
              }));
}

TEST(CalibrationCompatTest, DeviceFingerprintGolden)
{
    // Golden-pinned: fingerprints name persisted artifacts, so the
    // calibration hash must stay stable across refactors — if this
    // changes, bump kFingerprintVersion instead of silently
    // invalidating every stored artifact.
    dev::DeviceParams params;
    params.t1 = us(100.0);
    params.t2 = us(120.0);
    const std::vector<double> couplings(7, khz(200.0));
    const dev::Device device(
        graph::gridTopology(2, 3),
        dev::Calibration::uniform(graph::gridTopology(2, 3), params,
                                  couplings));
    EXPECT_EQ(fingerprintDevice(device).hex(),
              "ec1f700c68a62044ed0255ca15af4a50");
}

TEST(CalibrationCompatTest, EpochsCacheSeparately)
{
    CompileServiceConfig config;
    config.num_workers = 2;
    CompileService service(config);

    const auto base =
        std::make_shared<const dev::Device>(snapshotDevice());
    Rng drift_rng(99);
    const auto drifted = std::make_shared<const dev::Device>(
        base->withCalibration(
            base->calibration().drifted({}, drift_rng)));
    ASSERT_EQ(drifted->calibration().epoch, 1u);

    const ckt::QuantumCircuit circuit = benchmark();
    auto request = [&](std::shared_ptr<const dev::Device> device) {
        CompileRequest req;
        req.circuit = circuit;
        req.device = std::move(device);
        return req;
    };

    ServiceResult cold_base = service.submit(request(base)).get();
    ServiceResult cold_drift = service.submit(request(drifted)).get();
    ASSERT_TRUE(cold_base.ok() && cold_drift.ok());
    EXPECT_NE(cold_base.fingerprint, cold_drift.fingerprint);
    EXPECT_EQ(cold_base.outcome, Outcome::Compiled);
    EXPECT_EQ(cold_drift.outcome, Outcome::Compiled);
    EXPECT_EQ(cold_base.program->calib_epoch, 0u);
    EXPECT_EQ(cold_drift.program->calib_epoch, 1u);

    // Warm per epoch: each snapshot hits its own cache entry.
    ServiceResult warm_base = service.submit(request(base)).get();
    ServiceResult warm_drift = service.submit(request(drifted)).get();
    EXPECT_EQ(warm_base.outcome, Outcome::CacheHit);
    EXPECT_EQ(warm_drift.outcome, Outcome::CacheHit);
    EXPECT_EQ(programArtifactString(*warm_base.program),
              programArtifactString(*cold_base.program));
    EXPECT_EQ(programArtifactString(*warm_drift.program),
              programArtifactString(*cold_drift.program));
    // The artifacts embed the epoch, so the two cache generations are
    // distinguishable on disk as well.
    EXPECT_NE(programArtifactString(*warm_base.program),
              programArtifactString(*warm_drift.program));

    const MetricsSnapshot metrics = service.metrics();
    EXPECT_EQ(metrics.cache_hits, 2u);
    EXPECT_EQ(metrics.cache_misses, 2u);
}

TEST(CalibrationCompatTest, EpochRoundTripsThroughArtifact)
{
    const dev::Device device = snapshotDevice();
    Rng drift_rng(5);
    const dev::Device recal = device.withCalibration(
        device.calibration().drifted({}, drift_rng));
    const core::Compiler compiler =
        core::CompilerBuilder(recal)
            .pulseMethod(core::PulseMethod::Gaussian)
            .build();
    const core::CompileResult result = compiler.compile(benchmark(4));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.program.calib_epoch, 1u);

    std::istringstream in(programArtifactString(result.program));
    const auto back = readProgramArtifact(in);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->calib_epoch, 1u);
    EXPECT_EQ(programArtifactString(*back),
              programArtifactString(result.program));
}

} // namespace
} // namespace qzz::svc
