/**
 * @file
 * Service-level tests of the calibration-weighted scheduling policy:
 *
 *  - SchedPolicy::ZzxWeighted on a *uniform* calibration snapshot
 *    compiles byte-identically (programArtifactString) to classic
 *    ZZXSched — the regression bar that lets uniform deployments
 *    adopt the weighted policy without invalidating expectations;
 *  - on a *jittered* snapshot the weighted policy leaves strictly
 *    less calibrated residual ZZ than ParSched (the guaranteed
 *    bound; vs classic ZZXSched the objective may trade residual for
 *    smaller regions, so that comparison is only instance-pinned);
 *  - the policy round-trips through the artifact text format and
 *    fingerprints as a distinct cache generation.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "circuit/benchmarks.h"
#include "common/units.h"
#include "core/compiler.h"
#include "graph/topologies.h"
#include "service/artifact.h"
#include "service/fingerprint.h"

namespace qzz::svc {
namespace {

/** Uniform snapshot: every coupler identical -> weighted == classic. */
dev::Device
uniformDevice()
{
    const graph::Topology topo = graph::triangulatedGridTopology(2, 3);
    const std::vector<double> couplings(size_t(topo.g.numEdges()),
                                        khz(200.0));
    return dev::Device(topo, dev::DeviceParams{}, couplings);
}

/** Heterogeneous snapshot: per-edge ZZ jittered by 50%. */
dev::Device
jitteredDevice(uint64_t seed = 17)
{
    Rng rng(seed);
    const graph::Topology topo = graph::triangulatedGridTopology(2, 3);
    return dev::Device(
        topo, dev::Calibration::jittered(topo, dev::DeviceParams{},
                                         {0.0, 0.0, 0.0, 0.5}, rng));
}

ckt::QuantumCircuit
benchmark(int qubits = 6, uint64_t seed = 3)
{
    auto circuit = ckt::namedBenchmark("QFT", qubits, seed);
    EXPECT_TRUE(circuit.has_value());
    return *circuit;
}

core::CompileResult
compileWith(const dev::Device &device, core::SchedPolicy sched,
            const ckt::QuantumCircuit &circuit)
{
    core::CompileOptions opt;
    opt.pulse = core::PulseMethod::Gaussian;
    opt.sched = sched;
    const core::Compiler compiler =
        core::CompilerBuilder(device).options(opt).build();
    return compiler.compile(circuit);
}

TEST(WeightedSchedTest, UniformSnapshotBitIdenticalToClassic)
{
    // The tie-break contract: on a uniform snapshot every weighted
    // decision falls back to the classic NC/NQ order, so the two
    // policies must not differ in a single byte of the compiled
    // program apart from the recorded policy name.
    const dev::Device device = uniformDevice();
    const ckt::QuantumCircuit circuit = benchmark();

    core::CompileResult classic =
        compileWith(device, core::SchedPolicy::Zzx, circuit);
    core::CompileResult weighted =
        compileWith(device, core::SchedPolicy::ZzxWeighted, circuit);
    ASSERT_TRUE(classic.ok() && weighted.ok());

    // The artifact embeds the policy name; normalize it away so the
    // comparison covers everything else byte-for-byte.
    weighted.program.sched_policy = core::SchedPolicy::Zzx;
    EXPECT_EQ(programArtifactString(classic.program),
              programArtifactString(weighted.program));
    EXPECT_DOUBLE_EQ(classic.diagnostics.mean_residual_zz,
                     weighted.diagnostics.mean_residual_zz);
}

TEST(WeightedSchedTest, JitteredSnapshotLowersResidualZz)
{
    const dev::Device device = jitteredDevice();
    const ckt::QuantumCircuit circuit = benchmark();

    const core::CompileResult par =
        compileWith(device, core::SchedPolicy::Par, circuit);
    const core::CompileResult classic =
        compileWith(device, core::SchedPolicy::Zzx, circuit);
    const core::CompileResult weighted =
        compileWith(device, core::SchedPolicy::ZzxWeighted, circuit);
    ASSERT_TRUE(par.ok() && classic.ok() && weighted.ok());

    // ParSched suppresses nothing; any cut-shaped schedule beats it.
    EXPECT_LT(weighted.diagnostics.mean_residual_zz,
              par.diagnostics.mean_residual_zz);
    // Versus classic ZZXSched the bound below is NOT a general
    // guarantee (the alpha * NQ term can trade a sliver of residual
    // for smaller regions) — it is an instance pin on this exact
    // (seed 17, QFT-6, trigrid 2x3) input.  If a benign solver or
    // generator change flips it, re-verify the instance and repin
    // rather than treating it as a policy regression.
    EXPECT_LE(weighted.diagnostics.mean_residual_zz,
              classic.diagnostics.mean_residual_zz);
}

TEST(WeightedSchedTest, PolicyRoundTripsThroughArtifact)
{
    const dev::Device device = jitteredDevice();
    const core::CompileResult result =
        compileWith(device, core::SchedPolicy::ZzxWeighted,
                    benchmark(4));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.program.sched_policy,
              core::SchedPolicy::ZzxWeighted);

    std::istringstream in(programArtifactString(result.program));
    const auto back = readProgramArtifact(in);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->sched_policy, core::SchedPolicy::ZzxWeighted);
    EXPECT_EQ(programArtifactString(*back),
              programArtifactString(result.program));
}

TEST(WeightedSchedTest, PolicyIsADistinctCacheGeneration)
{
    // Same circuit + device, different policy: the request
    // fingerprint must differ (the options hash covers the enum), so
    // weighted and classic programs never alias one cache entry.
    core::CompileOptions classic;
    core::CompileOptions weighted;
    classic.sched = core::SchedPolicy::Zzx;
    weighted.sched = core::SchedPolicy::ZzxWeighted;
    EXPECT_NE(fingerprintOptions(classic), fingerprintOptions(weighted));

    const dev::Device device = jitteredDevice();
    const ckt::QuantumCircuit circuit = benchmark();
    EXPECT_NE(fingerprintRequest(circuit, device, classic),
              fingerprintRequest(circuit, device, weighted));
}

} // namespace
} // namespace qzz::svc
