/**
 * @file
 * TraceLog tests: the JSONL span record format, id minting,
 * size-bounded rotation, and the slow-request summary sink.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "service/trace.h"

namespace qzz::svc {
namespace {

namespace fs = std::filesystem;

class TraceLogTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = (fs::temp_directory_path() /
                ("qzz_trace_test_" +
                 std::to_string(
                     ::testing::UnitTest::GetInstance()->random_seed()) +
                 "_" + ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name()))
                   .string();
        fs::remove_all(dir_);
        fs::create_directories(dir_);
        path_ = (fs::path(dir_) / "trace.jsonl").string();
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::vector<std::string>
    fileLines(const std::string &path) const
    {
        std::ifstream in(path);
        std::vector<std::string> out;
        std::string line;
        while (std::getline(in, line))
            out.push_back(line);
        return out;
    }

    std::string dir_;
    std::string path_;
};

TEST_F(TraceLogTest, RenderSpanGolden)
{
    TraceSpan span;
    span.trace_id = "00112233445566778899aabbccddeeff";
    span.span_id = 7;
    span.parent_id = 3;
    span.name = "cache_probe";
    span.start_unix_ms = 1500.5;
    span.duration_ms = 0.25;
    EXPECT_EQ(renderTraceSpan(span),
              "{\"trace_id\":\"00112233445566778899aabbccddeeff\","
              "\"span_id\":7,\"parent_id\":3,\"name\":\"cache_probe\","
              "\"start_ms\":1500.500,\"dur_ms\":0.250}");
    span.attrs = {{"outcome", "Compiled"}, {"note", "a\"b"}};
    EXPECT_EQ(renderTraceSpan(span),
              "{\"trace_id\":\"00112233445566778899aabbccddeeff\","
              "\"span_id\":7,\"parent_id\":3,\"name\":\"cache_probe\","
              "\"start_ms\":1500.500,\"dur_ms\":0.250,"
              "\"attrs\":{\"outcome\":\"Compiled\","
              "\"note\":\"a\\\"b\"}}");
}

TEST_F(TraceLogTest, MintedIdsAreWellFormedAndUnique)
{
    std::set<std::string> traces;
    for (int i = 0; i < 256; ++i) {
        const std::string id = TraceLog::mintTraceId();
        ASSERT_EQ(id.size(), 32u);
        for (char c : id)
            ASSERT_TRUE((c >= '0' && c <= '9') ||
                        (c >= 'a' && c <= 'f'))
                << id;
        traces.insert(id);
    }
    EXPECT_EQ(traces.size(), 256u);

    std::set<uint64_t> spans;
    for (int i = 0; i < 256; ++i) {
        const uint64_t id = TraceLog::mintSpanId();
        ASSERT_NE(id, 0u);
        spans.insert(id);
    }
    EXPECT_EQ(spans.size(), 256u);
}

TEST_F(TraceLogTest, EmitAppendsOneLinePerSpan)
{
    TraceLogConfig config;
    config.path = path_;
    TraceLog log(config);
    TraceSpan span;
    span.trace_id = TraceLog::mintTraceId();
    span.span_id = TraceLog::mintSpanId();
    span.name = "request";
    log.emit(span);
    span.span_id = TraceLog::mintSpanId();
    span.parent_id = 1;
    span.name = "queue_wait";
    log.emit(span);
    EXPECT_EQ(log.spansEmitted(), 2u);
    const auto lines = fileLines(path_);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_NE(lines[0].find("\"name\":\"request\""), std::string::npos);
    EXPECT_NE(lines[1].find("\"name\":\"queue_wait\""),
              std::string::npos);
    // Reopening the same path appends, never truncates.
    TraceLog again(config);
    span.span_id = TraceLog::mintSpanId();
    span.name = "respond";
    again.emit(span);
    EXPECT_EQ(fileLines(path_).size(), 3u);
}

TEST_F(TraceLogTest, EmitTreeWritesSpansContiguously)
{
    TraceLogConfig config;
    config.path = path_;
    TraceLog log(config);
    std::vector<TraceSpan> tree(3);
    tree[0].trace_id = tree[1].trace_id = tree[2].trace_id =
        TraceLog::mintTraceId();
    tree[0].span_id = 10;
    tree[0].name = "request";
    tree[1].span_id = 11;
    tree[1].parent_id = 10;
    tree[1].name = "queue_wait";
    tree[2].span_id = 12;
    tree[2].parent_id = 10;
    tree[2].name = "compile";
    log.emitTree(tree);
    EXPECT_EQ(log.spansEmitted(), 3u);
    const auto lines = fileLines(path_);
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_NE(lines[0].find("\"name\":\"request\""), std::string::npos);
    EXPECT_NE(lines[1].find("\"name\":\"queue_wait\""),
              std::string::npos);
    EXPECT_NE(lines[2].find("\"name\":\"compile\""), std::string::npos);
}

TEST_F(TraceLogTest, RotatesBeforeExceedingMaxBytes)
{
    TraceLogConfig config;
    config.path = path_;
    config.max_bytes = 512;
    TraceLog log(config);
    TraceSpan span;
    span.trace_id = TraceLog::mintTraceId();
    span.name = "request";
    for (int i = 0; i < 64; ++i) {
        span.span_id = uint64_t(i) + 1;
        log.emit(span);
    }
    EXPECT_GE(log.rotations(), 1u);
    EXPECT_EQ(log.spansEmitted(), 64u);
    // The live file stays under the bound; the previous generation is
    // at "<path>.1", so the sink holds at most ~2x max_bytes.
    EXPECT_LE(fs::file_size(path_), config.max_bytes);
    EXPECT_TRUE(fs::exists(path_ + ".1"));
    EXPECT_LE(fs::file_size(path_ + ".1"), config.max_bytes);
    // No span line was lost across the rotations that kept both
    // generations: the two files together hold the newest records.
    const auto live = fileLines(path_);
    const auto prev = fileLines(path_ + ".1");
    EXPECT_GE(live.size() + prev.size(), 2u);
}

TEST_F(TraceLogTest, SlowRootsGoToTheSlowSink)
{
    TraceLogConfig config;
    config.path = path_;
    config.slow_ms = 100.0;
    TraceLog log(config);
    std::ostringstream slow;
    log.setSlowSink(&slow);

    std::vector<TraceSpan> tree(2);
    tree[0].trace_id = "aa112233445566778899aabbccddeeff";
    tree[0].span_id = 1;
    tree[0].name = "request";
    tree[0].duration_ms = 250.0;
    tree[0].attrs = {{"outcome", "Compiled"}};
    tree[1].span_id = 2;
    tree[1].parent_id = 1; // child spans never hit the slow sink
    tree[1].name = "compile";
    tree[1].duration_ms = 240.0;
    log.emitTree(tree);
    EXPECT_EQ(log.slowLogged(), 1u);
    const std::string line = slow.str();
    EXPECT_NE(
        line.find("qzz-slow trace_id=aa112233445566778899aabbccddeeff"),
        std::string::npos)
        << line;
    EXPECT_NE(line.find("name=request"), std::string::npos);
    EXPECT_NE(line.find("outcome=Compiled"), std::string::npos);

    // A fast root stays quiet.
    tree[0].duration_ms = 5.0;
    tree[0].span_id = 3;
    log.emitTree({tree[0]});
    EXPECT_EQ(log.slowLogged(), 1u);
}

TEST_F(TraceLogTest, EmptyPathThrows)
{
    EXPECT_THROW(TraceLog(TraceLogConfig{}), UserError);
}

TEST_F(TraceLogTest, ConcurrentEmittersNeverTearLines)
{
    TraceLogConfig config;
    config.path = path_;
    TraceLog log(config);
    constexpr int kThreads = 4;
    constexpr int kSpans = 200;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&log, t] {
            TraceSpan span;
            span.trace_id = TraceLog::mintTraceId();
            span.name = "worker" + std::to_string(t);
            for (int i = 0; i < kSpans; ++i) {
                span.span_id = TraceLog::mintSpanId();
                log.emit(span);
            }
        });
    for (std::thread &t : threads)
        t.join();
    const auto lines = fileLines(path_);
    ASSERT_EQ(lines.size(), size_t(kThreads) * kSpans);
    for (const std::string &line : lines) {
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
    }
}

} // namespace
} // namespace qzz::svc
