/**
 * @file
 * Integration test for Compiler::compileBatch(): a 12-qubit workload
 * compiled across a thread pool must produce bit-identical schedules
 * to sequential compilation, while finishing measurably faster.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <thread>

#include "circuit/benchmarks.h"
#include "core/compiler.h"
#include "core/schedule_io.h"
#include "graph/topologies.h"

namespace qzz::core {
namespace {

std::string
fingerprint(const CompiledProgram &prog)
{
    std::ostringstream os;
    ScheduleIoOptions opt;
    opt.sample_dt = 0.0;
    opt.pretty = false;
    writeScheduleJson(prog.schedule, *prog.library, os, opt);
    return os.str();
}

std::vector<ckt::QuantumCircuit>
workload12(int count)
{
    std::vector<ckt::QuantumCircuit> out;
    for (uint64_t seed = 1; seed <= uint64_t(count); ++seed) {
        Rng rng(seed);
        out.push_back(ckt::googleRandom(12, 6, rng));
    }
    return out;
}

TEST(BatchCompileTest, MatchesSequentialBitForBitAndRunsFaster)
{
    Rng rng(2);
    dev::Device device(graph::gridTopology(3, 4), dev::DeviceParams{},
                       rng);
    const auto circuits = workload12(8);
    const Compiler compiler = CompilerBuilder(device)
                                  .pulseMethod(PulseMethod::Gaussian)
                                  .schedPolicy(SchedPolicy::Zzx)
                                  .build();

    // Warm the pulse-library memo and code paths outside the timed
    // region so both measurements start from the same state.
    ASSERT_TRUE(compiler.compile(circuits.front()).ok());

    using Clock = std::chrono::steady_clock;
    const auto seq_start = Clock::now();
    std::vector<CompileResult> sequential;
    for (const ckt::QuantumCircuit &c : circuits)
        sequential.push_back(compiler.compile(c));
    const double seq_ms =
        std::chrono::duration<double, std::milli>(Clock::now() -
                                                  seq_start)
            .count();

    BatchOptions opt;
    opt.num_threads = 4;
    // Two runs, best wall time kept: damps scheduling noise from the
    // other tests ctest -j runs alongside this one.
    BatchResult batch = compiler.compileBatch(circuits, opt);
    {
        BatchResult second = compiler.compileBatch(circuits, opt);
        if (second.wall_ms < batch.wall_ms)
            batch = std::move(second);
    }

    ASSERT_TRUE(batch.allOk());
    ASSERT_EQ(batch.results.size(), circuits.size());
    EXPECT_EQ(batch.threads_used, 4);
    for (size_t i = 0; i < circuits.size(); ++i) {
        ASSERT_TRUE(sequential[i].ok());
        EXPECT_EQ(fingerprint(batch.results[i].program),
                  fingerprint(sequential[i].program))
            << "circuit " << i << " diverged under batch compilation";
    }
    // The workers share one pulse library instance.
    for (const CompileResult &r : batch.results)
        EXPECT_EQ(r.program.library.get(),
                  batch.results.front().program.library.get());

    // Measurably faster: 8 ZZXSched compilations of GRC-12 take tens
    // of milliseconds sequentially; with >= 2 real cores the 4
    // workers must beat that even on a loaded CI machine.  On a
    // single-core machine concurrency cannot win, so only bound the
    // fan-out overhead there.
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw >= 2) {
        EXPECT_LT(batch.wall_ms, seq_ms)
            << "batch (" << batch.wall_ms << " ms) not faster than "
            << "sequential (" << seq_ms << " ms) on " << hw
            << " hardware threads";
    } else {
        EXPECT_LT(batch.wall_ms, seq_ms * 1.5)
            << "single-core batch overhead too high: "
            << batch.wall_ms << " ms vs sequential " << seq_ms
            << " ms";
    }
}

TEST(BatchCompileTest, SingleThreadBatchStillMatches)
{
    Rng rng(2);
    dev::Device device(graph::gridTopology(2, 3), dev::DeviceParams{},
                       rng);
    std::vector<ckt::QuantumCircuit> circuits;
    for (uint64_t seed = 1; seed <= 3; ++seed) {
        Rng crng(seed);
        circuits.push_back(ckt::hiddenShift(6, crng));
    }
    const Compiler compiler = CompilerBuilder(device)
                                  .pulseMethod(PulseMethod::Gaussian)
                                  .schedPolicy(SchedPolicy::Par)
                                  .build();
    BatchOptions opt;
    opt.num_threads = 1;
    const BatchResult batch = compiler.compileBatch(circuits, opt);
    ASSERT_TRUE(batch.allOk());
    EXPECT_EQ(batch.threads_used, 1);
    for (size_t i = 0; i < circuits.size(); ++i) {
        CompileResult direct = compiler.compile(circuits[i]);
        ASSERT_TRUE(direct.ok());
        EXPECT_EQ(fingerprint(batch.results[i].program),
                  fingerprint(direct.program));
    }
}

TEST(BatchCompileTest, FailuresLandPerCircuit)
{
    Rng rng(2);
    dev::Device device(graph::gridTopology(2, 3), dev::DeviceParams{},
                       rng);
    std::vector<ckt::QuantumCircuit> circuits;
    circuits.emplace_back(6, "fits");
    circuits.back().h(0);
    circuits.emplace_back(12, "too-big"); // exceeds the device
    circuits.back().h(0);
    const Compiler compiler = CompilerBuilder(device)
                                  .pulseMethod(PulseMethod::Gaussian)
                                  .build();
    const BatchResult batch = compiler.compileBatch(circuits);
    ASSERT_EQ(batch.results.size(), 2u);
    EXPECT_TRUE(batch.results[0].ok());
    EXPECT_FALSE(batch.results[1].ok());
    EXPECT_FALSE(batch.allOk());
    EXPECT_EQ(batch.results[1].status.code,
              CompileStatusCode::InvalidInput);
}

} // namespace
} // namespace qzz::core
