/**
 * @file
 * End-to-end reproduction smoke tests: the co-optimization must beat
 * the baseline on small instances, mirroring the shape of Figs. 20-21
 * at unit-test scale.  Pulse optimization runs with a reduced budget
 * through the calibration store, so repeated test runs are fast.
 */

#include <gtest/gtest.h>

#include "circuit/benchmarks.h"
#include "common/units.h"
#include "core/pulse_opt.h"
#include "exp/pipeline.h"
#include "exp/suite.h"

namespace qzz::exp {
namespace {

class EndToEndTest : public ::testing::Test
{
  protected:
    static dev::Device
    makeDevice()
    {
        Rng rng(11);
        return dev::Device(graph::gridTopology(2, 2),
                           dev::DeviceParams{}, rng);
    }

    static ckt::QuantumCircuit
    makeCircuit()
    {
        Rng rng(4);
        return ckt::hiddenShift(4, rng);
    }

    static FidelityResult
    eval(core::PulseMethod pulse, core::SchedPolicy sched)
    {
        auto dev = makeDevice();
        auto c = makeCircuit();
        core::CompileOptions opt;
        opt.pulse = pulse;
        opt.sched = sched;
        sim::PulseSimOptions sopt;
        sopt.dt = 0.05;
        return evaluateFidelity(c, dev, opt, sopt);
    }
};

TEST_F(EndToEndTest, CoOptimizationBeatsBaseline)
{
    FidelityResult base =
        eval(core::PulseMethod::Gaussian, core::SchedPolicy::Par);
    FidelityResult ours =
        eval(core::PulseMethod::Pert, core::SchedPolicy::Zzx);
    EXPECT_GT(ours.fidelity, base.fidelity)
        << "co-optimization must improve fidelity";
    EXPECT_GT(ours.fidelity, 0.9);
}

TEST_F(EndToEndTest, CoOptimizationBeatsEitherAlone)
{
    // The Fig. 21 synergy claim at unit scale.
    FidelityResult both =
        eval(core::PulseMethod::Pert, core::SchedPolicy::Zzx);
    FidelityResult pulse_only =
        eval(core::PulseMethod::Pert, core::SchedPolicy::Par);
    FidelityResult sched_only =
        eval(core::PulseMethod::Gaussian, core::SchedPolicy::Zzx);
    EXPECT_GE(both.fidelity, pulse_only.fidelity - 0.02);
    EXPECT_GE(both.fidelity, sched_only.fidelity - 0.02);
}

TEST_F(EndToEndTest, ZzxTradesTimeForSuppression)
{
    FidelityResult par =
        eval(core::PulseMethod::Gaussian, core::SchedPolicy::Par);
    FidelityResult zzx =
        eval(core::PulseMethod::Gaussian, core::SchedPolicy::Zzx);
    EXPECT_GE(zzx.execution_time, par.execution_time - 1e-9);
    EXPECT_LE(zzx.execution_time, 3.0 * par.execution_time);
    // ZZXSched leaves fewer unsuppressed couplings per layer.
    EXPECT_LE(zzx.mean_nc, par.mean_nc + 1e-9);
}

TEST_F(EndToEndTest, OptCtrlAlsoWorks)
{
    FidelityResult base =
        eval(core::PulseMethod::Gaussian, core::SchedPolicy::Par);
    FidelityResult ours =
        eval(core::PulseMethod::OptCtrl, core::SchedPolicy::Zzx);
    EXPECT_GT(ours.fidelity, base.fidelity);
}

} // namespace
} // namespace qzz::exp
