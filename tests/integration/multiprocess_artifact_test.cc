/**
 * @file
 * Multi-process artifact-tier torture tests: several CompileService
 * processes (real fork()ed children, not threads) share one artifact
 * directory, write overlapping workloads, and run GC concurrently.
 * The invariants under test are exactly the ones the distributed
 * serving story depends on:
 *
 *   - no process ever crashes or corrupts the tier (manifest stays
 *     parseable, every surviving file is a valid fingerprint name);
 *   - the byte-capacity bound holds after a final GC pass;
 *   - artifacts written by one process serve disk hits in another.
 *
 * fork() happens strictly before the parent creates any service (and
 * therefore any thread): forking a multithreaded process would leave
 * child-side mutexes in undefined states.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "circuit/benchmarks.h"
#include "graph/topologies.h"
#include "service/artifact_gc.h"
#include "service/compile_service.h"

namespace qzz::svc {
namespace {

namespace fs = std::filesystem;

std::shared_ptr<const dev::Device>
sharedDevice()
{
    // Same topology + seed in every process => same calibration =>
    // same fingerprints across the fleet.
    Rng rng(11);
    return std::make_shared<const dev::Device>(graph::gridTopology(2, 3),
                                               dev::DeviceParams{}, rng);
}

core::CompileOptions
options()
{
    core::CompileOptions opt;
    opt.pulse = core::PulseMethod::Gaussian;
    opt.sched = core::SchedPolicy::Zzx;
    return opt;
}

/** The workload for one child: QFT/HS instances whose seeds overlap
 *  with every other child's, so processes race on the same
 *  fingerprints as well as writing distinct ones. */
std::vector<ckt::QuantumCircuit>
workload(int child)
{
    std::vector<ckt::QuantumCircuit> circuits;
    for (uint64_t seed = 1; seed <= 3; ++seed) {
        circuits.push_back(*ckt::namedBenchmark("QFT", 4, seed));
        circuits.push_back(*ckt::namedBenchmark("HS", 4, seed));
    }
    // One circuit unique to this child, so the tier also sees
    // non-overlapping writes.
    circuits.push_back(
        *ckt::namedBenchmark("QFT", 5, uint64_t(100 + child)));
    return circuits;
}

/** Child body: compile the workload against the shared tier with a
 *  tight GC, twice (the second round mixes hits with evictions).
 *  Returns the child's exit code. */
int
childMain(const std::string &dir, int child, uint64_t capacity_bytes)
{
    ArtifactGcConfig gc_config;
    gc_config.capacity_bytes = capacity_bytes;
    auto gc = std::make_shared<ArtifactGc>(dir, gc_config);

    CompileServiceConfig config;
    config.num_workers = 2;
    config.cache.capacity = 4; // force artifact-tier traffic
    config.cache.artifact_dir = dir;
    config.cache.gc = gc;
    CompileService service(config);

    auto device = sharedDevice();
    for (int round = 0; round < 2; ++round) {
        std::vector<RequestHandle> handles;
        for (const auto &circuit : workload(child))
            handles.push_back(
                service.submit({circuit, device, options(), {}}));
        for (auto &handle : handles) {
            const ServiceResult result = handle.get();
            if (!result.ok())
                return 1;
        }
        // An explicit pass in each child, concurrent with the other
        // children's write-path maybeCollect() calls.
        gc->run();
    }
    service.shutdown(true);
    return 0;
}

/** Fork @p children child processes running childMain; true iff all
 *  exited 0. */
bool
runChildren(const std::string &dir, int children, uint64_t capacity_bytes)
{
    std::vector<pid_t> pids;
    for (int i = 0; i < children; ++i) {
        const pid_t pid = fork();
        if (pid == 0) {
            // _exit, not exit: no parent-side gtest teardown in the
            // child, no double-flushed stdio buffers.
            _exit(childMain(dir, i, capacity_bytes));
        }
        if (pid < 0)
            return false;
        pids.push_back(pid);
    }
    bool ok = true;
    for (const pid_t pid : pids) {
        int status = 0;
        if (waitpid(pid, &status, 0) != pid || !WIFEXITED(status) ||
            WEXITSTATUS(status) != 0)
            ok = false;
    }
    return ok;
}

class MultiprocessArtifactTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = (fs::temp_directory_path() /
                ("qzz_multiproc_" +
                 std::string(::testing::UnitTest::GetInstance()
                                 ->current_test_info()
                                 ->name())))
                   .string();
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::string dir_;
};

TEST_F(MultiprocessArtifactTest, ConcurrentWritersKeepTheTierConsistent)
{
    // Tight capacity: evictions happen *while* other processes write.
    constexpr uint64_t kCapacity = 96 * 1024;
    ASSERT_TRUE(runChildren(dir_, 3, kCapacity));

    // Every surviving artifact is named by a valid fingerprint and the
    // manifest (rebuilt under the directory lock by whichever GC pass
    // ran last) parses.
    size_t files = 0;
    for (const auto &entry : fs::directory_iterator(dir_)) {
        if (entry.path().extension() != ".qzzprog")
            continue;
        ++files;
        EXPECT_TRUE(
            Fingerprint::fromHex(entry.path().stem().string()).has_value())
            << entry.path();
    }
    EXPECT_GT(files, 0u);

    // A final pass settles the bound regardless of which child's GC
    // won the last race.
    ArtifactGcConfig gc_config;
    gc_config.capacity_bytes = kCapacity;
    ArtifactGc gc(dir_, gc_config);
    const ArtifactGcStats stats = gc.run();
    EXPECT_LE(stats.bytes_after, kCapacity);
    EXPECT_EQ(stats.dropped_lines, 0u);

    // Manifest and directory agree exactly after the pass.
    const auto entries = readManifest(dir_);
    size_t remaining = 0;
    for (const auto &entry : fs::directory_iterator(dir_))
        if (entry.path().extension() == ".qzzprog")
            ++remaining;
    EXPECT_EQ(entries.size(), remaining);
}

TEST_F(MultiprocessArtifactTest, ArtifactsFromOneProcessServeAnother)
{
    // Generous capacity: nothing evicted, so every child artifact
    // must be rescuable.
    ASSERT_TRUE(runChildren(dir_, 1, /*capacity_bytes=*/0));

    // A fresh service (empty in-memory cache) over the same tier:
    // the child's artifact answers from disk.
    CompileServiceConfig config;
    config.num_workers = 1;
    config.cache.artifact_dir = dir_;
    CompileService service(config);

    auto device = sharedDevice();
    const ServiceResult result =
        service
            .submit({*ckt::namedBenchmark("QFT", 4, 1), device,
                     options(), {}})
            .get();
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.outcome, Outcome::CacheHit);
    EXPECT_GE(service.cache().stats().disk_hits, 1u);
    service.shutdown(true);
}

} // namespace
} // namespace qzz::svc
