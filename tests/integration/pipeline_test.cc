#include "exp/pipeline.h"

#include <gtest/gtest.h>

#include "circuit/benchmarks.h"
#include "common/units.h"
#include "exp/suite.h"

namespace qzz::exp {
namespace {

dev::Device
smallDevice(uint64_t seed = 11)
{
    Rng rng(seed);
    return dev::Device(graph::gridTopology(2, 2), dev::DeviceParams{},
                       rng);
}

TEST(PipelineTest, ConfigNames)
{
    core::CompileOptions opt;
    opt.pulse = core::PulseMethod::Gaussian;
    opt.sched = core::SchedPolicy::Par;
    EXPECT_EQ(configName(opt), "Gau+ParSched");
    opt.pulse = core::PulseMethod::Pert;
    opt.sched = core::SchedPolicy::Zzx;
    EXPECT_EQ(configName(opt), "Pert+ZZXSched");
}

TEST(PipelineTest, NoCrosstalkGivesNearUnitFidelity)
{
    // Calibration check: with ZZ disabled, the whole pipeline (route,
    // decompose, schedule, pulse-simulate) reproduces the ideal state.
    auto dev = smallDevice();
    Rng rng(4);
    ckt::QuantumCircuit c = ckt::hiddenShift(4, rng);
    core::CompileOptions opt;
    opt.pulse = core::PulseMethod::Gaussian;
    opt.sched = core::SchedPolicy::Par;
    sim::PulseSimOptions sopt;
    sopt.crosstalk_scale = 0.0;
    sopt.dt = 0.02;
    FidelityResult res = evaluateFidelity(c, dev, opt, sopt);
    EXPECT_GT(res.fidelity, 1.0 - 1e-4);
}

TEST(PipelineTest, CrosstalkHurtsBaseline)
{
    auto dev = smallDevice();
    Rng rng(4);
    ckt::QuantumCircuit c = ckt::hiddenShift(4, rng);
    core::CompileOptions opt;
    opt.pulse = core::PulseMethod::Gaussian;
    opt.sched = core::SchedPolicy::Par;
    FidelityResult res = evaluateFidelity(c, dev, opt);
    EXPECT_LT(res.fidelity, 0.999);
    EXPECT_GT(res.execution_time, 0.0);
    EXPECT_GT(res.physical_layers, 0);
}

TEST(PipelineTest, DecoherenceVariantTracksPureVariant)
{
    // With infinite T1/T2 the density-matrix pipeline must agree with
    // the state-vector pipeline.
    auto dev = smallDevice();
    Rng rng(4);
    ckt::QuantumCircuit c = ckt::hiddenShift(4, rng);
    core::CompileOptions opt;
    opt.pulse = core::PulseMethod::Gaussian;
    opt.sched = core::SchedPolicy::Par;
    sim::PulseSimOptions sopt;
    sopt.dt = 0.1;
    FidelityResult pure = evaluateFidelity(c, dev, opt, sopt);
    FidelityResult open =
        evaluateFidelityWithDecoherence(c, dev, opt, sopt);
    EXPECT_NEAR(pure.fidelity, open.fidelity, 1e-6);
}

TEST(PipelineTest, FiniteCoherenceLowersFidelity)
{
    const auto dev =
        smallDevice().withCoherence(us(50.0), us(50.0));
    Rng rng(4);
    ckt::QuantumCircuit c = ckt::hiddenShift(4, rng);
    core::CompileOptions opt;
    opt.pulse = core::PulseMethod::Gaussian;
    opt.sched = core::SchedPolicy::Par;
    sim::PulseSimOptions sopt;
    sopt.dt = 0.1;
    sopt.crosstalk_scale = 0.0;
    FidelityResult res =
        evaluateFidelityWithDecoherence(c, dev, opt, sopt);
    EXPECT_LT(res.fidelity, 0.999);
    EXPECT_GT(res.fidelity, 0.5);
}

TEST(SuiteTest, QuickSuiteFiltersBySize)
{
    SuiteConfig cfg;
    cfg.max_qubits = 6;
    auto suite = buildSuite(cfg);
    for (const auto &entry : suite)
        EXPECT_LE(entry.circuit.numQubits(), 6);
    EXPECT_FALSE(suite.empty());
}

TEST(SuiteTest, DevicesSharedPerSize)
{
    auto suite = buildSuite({});
    const dev::Device *four_a = nullptr;
    const dev::Device *four_b = nullptr;
    for (const auto &entry : suite) {
        if (entry.circuit.numQubits() == 4) {
            if (!four_a)
                four_a = &entry.device;
            else if (!four_b)
                four_b = &entry.device;
        }
    }
    ASSERT_NE(four_a, nullptr);
    ASSERT_NE(four_b, nullptr);
    EXPECT_EQ(four_a->couplings(), four_b->couplings());
}

TEST(SuiteTest, CouplingsMatchPaperDistribution)
{
    auto suite = buildSuite({});
    for (const auto &entry : suite)
        for (double lambda : entry.device.couplings()) {
            EXPECT_GT(toKhz(lambda), 10.0);
            EXPECT_LT(toKhz(lambda), 800.0);
        }
}

} // namespace
} // namespace qzz::exp
