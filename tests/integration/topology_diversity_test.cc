/**
 * @file
 * Scenario diversity beyond grids: the paper benchmark families must
 * compile on heavy-hex and ring devices — through the Compiler, batch
 * compilation, and the CompileService — with the ZZ-suppression
 * invariants intact:
 *
 *  - every physical layer of a ZZXSched schedule satisfies the
 *    resolved suppression requirement R (NQ <= nq_max, NC <= nc_max);
 *  - ZZXSched never leaves more unsuppressed couplings per layer than
 *    the ParSched baseline (the mean-NC ordering of Figs. 20-22);
 *  - all circuit gates are scheduled, none dropped.
 *
 * Heavy-hex lattices are bipartite (every edge is subdivided by a
 * bridge qubit), so complete suppression exists for single-qubit
 * layers (Sec. 5.1); even rings are bipartite too, odd rings are the
 * smallest non-bipartite regime.
 */

#include <gtest/gtest.h>

#include "circuit/benchmarks.h"
#include "common/suppression_invariants.h"
#include "core/compiler.h"
#include "graph/topologies.h"
#include "service/artifact.h"
#include "service/compile_service.h"

namespace qzz::core {
namespace {

dev::Device
makeDevice(graph::Topology topo, uint64_t seed = 11)
{
    Rng rng(seed);
    return dev::Device(std::move(topo), dev::DeviceParams{}, rng);
}

CompileOptions
withSched(SchedPolicy sched)
{
    CompileOptions opt;
    opt.pulse = PulseMethod::Gaussian;
    opt.sched = sched;
    return opt;
}

/** The benchmark families sized for @p qubits (skipping HS when the
 *  size is odd — its bent function needs an even register). */
std::vector<ckt::QuantumCircuit>
familiesFor(int qubits)
{
    std::vector<ckt::QuantumCircuit> circuits;
    for (const std::string &family : ckt::benchmarkFamilyNames()) {
        if (family == "HS" && qubits % 2 != 0)
            continue;
        auto c = ckt::namedBenchmark(family, qubits, 3);
        if (c.has_value())
            circuits.push_back(std::move(*c));
    }
    return circuits;
}

void
expectSuppressionInvariants(const dev::Device &device,
                            const ckt::QuantumCircuit &circuit)
{
    const Compiler zzx = CompilerBuilder(device)
                             .options(withSched(SchedPolicy::Zzx))
                             .build();
    const Compiler par = CompilerBuilder(device)
                             .options(withSched(SchedPolicy::Par))
                             .build();
    CompileResult zzx_result = zzx.compile(circuit);
    CompileResult par_result = par.compile(circuit);
    ASSERT_TRUE(zzx_result.ok())
        << circuit.name() << " on " << device.topology().name << ": "
        << zzx_result.status.message;
    ASSERT_TRUE(par_result.ok());

    // Nothing dropped: both schedules play every circuit gate.
    EXPECT_EQ(zzx_result.program.schedule.circuitGateCount(),
              int(zzx_result.program.native.size()));
    EXPECT_EQ(zzx_result.program.schedule.circuitGateCount(),
              par_result.program.schedule.circuitGateCount());

    // Suppression invariants of Algorithm 2 against the resolved
    // requirement R (see tests/common/suppression_invariants.h for
    // the exact per-layer assertions, shared with the unit and
    // oracle-fuzz suites).
    const ZzxOptions resolved = resolveZzxOptions({}, device);
    testsup::expectSuppressionInvariants(
        zzx_result.program.schedule, device, resolved,
        circuit.name() + " on " + device.topology().name);

    // The co-optimized policy leaves no more residual crosstalk per
    // layer than maximal parallelism.
    EXPECT_LE(zzx_result.program.schedule.meanNc(),
              par_result.program.schedule.meanNc() + 1e-9)
        << circuit.name() << " on " << device.topology().name;
}

TEST(TopologyDiversityTest, PaperFamiliesOnHeavyHex)
{
    // One heavy-hex cell: 6 corners + 6 bridge qubits.
    const dev::Device device =
        makeDevice(graph::heavyHexTopology(1, 1));
    ASSERT_EQ(device.numQubits(), 12);
    for (const ckt::QuantumCircuit &circuit : familiesFor(12))
        expectSuppressionInvariants(device, circuit);
}

TEST(TopologyDiversityTest, PaperFamiliesOnEvenRing)
{
    const dev::Device device = makeDevice(graph::ringTopology(6));
    for (const ckt::QuantumCircuit &circuit : familiesFor(6))
        expectSuppressionInvariants(device, circuit);
}

TEST(TopologyDiversityTest, PaperFamiliesOnOddRing)
{
    // Odd rings are non-bipartite: complete suppression of
    // single-qubit layers is impossible, so this exercises the
    // alpha-optimal trade-off rather than the trivial NC = 0 cut.
    const dev::Device device = makeDevice(graph::ringTopology(7));
    for (const ckt::QuantumCircuit &circuit : familiesFor(7))
        expectSuppressionInvariants(device, circuit);
}

TEST(TopologyDiversityTest, BatchCompileMatchesSequentialOffGrid)
{
    const dev::Device device =
        makeDevice(graph::heavyHexTopology(1, 1));
    const std::vector<ckt::QuantumCircuit> circuits = familiesFor(12);
    const Compiler compiler = CompilerBuilder(device)
                                  .options(withSched(SchedPolicy::Zzx))
                                  .build();
    BatchOptions opt;
    opt.num_threads = 2;
    const BatchResult batch = compiler.compileBatch(circuits, opt);
    ASSERT_TRUE(batch.allOk());
    for (size_t i = 0; i < circuits.size(); ++i) {
        CompileResult direct = compiler.compile(circuits[i]);
        ASSERT_TRUE(direct.ok());
        EXPECT_EQ(
            svc::programArtifactString(batch.results[i].program),
            svc::programArtifactString(direct.program))
            << circuits[i].name() << " diverged under batch compile";
    }
}

TEST(TopologyDiversityTest, ServiceServesOffGridDevices)
{
    // One service, two different devices in the same request stream.
    auto heavy_hex = std::make_shared<const dev::Device>(
        makeDevice(graph::heavyHexTopology(1, 1)));
    auto ring = std::make_shared<const dev::Device>(
        makeDevice(graph::ringTopology(6)));

    svc::CompileServiceConfig config;
    config.num_workers = 2;
    svc::CompileService service(config);
    std::vector<svc::CompileRequest> requests;
    for (const ckt::QuantumCircuit &c : familiesFor(12))
        requests.push_back(
            {c, heavy_hex, withSched(SchedPolicy::Zzx), {}});
    for (const ckt::QuantumCircuit &c : familiesFor(6))
        requests.push_back({c, ring, withSched(SchedPolicy::Zzx), {}});

    std::vector<svc::RequestHandle> handles =
        service.submitBatch(std::move(requests));
    for (svc::RequestHandle &handle : handles) {
        svc::ServiceResult result = handle.get();
        ASSERT_TRUE(result.ok()) << result.status.message;
        EXPECT_EQ(result.program->sched_policy, SchedPolicy::Zzx);
    }
    const svc::MetricsSnapshot m = service.metrics();
    EXPECT_EQ(m.completed, m.submitted);
    EXPECT_EQ(m.failed, 0u);
}

} // namespace
} // namespace qzz::core
