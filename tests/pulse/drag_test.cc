#include "pulse/drag.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/units.h"

namespace qzz::pulse {
namespace {

TEST(DragTest, QuadratureCrossCoupling)
{
    auto x = std::make_shared<GaussianWaveform>(0.3, 20.0, 5.0);
    const double alpha = -mhz(300.0);
    QuadraturePair out = applyDrag(x, nullptr, alpha);
    // y' = -x'/alpha, x' unchanged (no original y).
    for (double t : {4.0, 10.0, 15.0}) {
        EXPECT_NEAR(out.x->value(t), x->value(t), 1e-12);
        EXPECT_NEAR(out.y->value(t), -x->derivative(t) / alpha, 1e-9);
    }
}

TEST(DragTest, ZeroDerivativeAtPeakGivesZeroCorrection)
{
    auto x = std::make_shared<GaussianWaveform>(0.3, 20.0, 5.0);
    QuadraturePair out = applyDrag(x, nullptr, -mhz(200.0));
    EXPECT_NEAR(out.y->value(10.0), 0.0, 1e-9);
}

TEST(DragTest, BothQuadratures)
{
    auto x = std::make_shared<GaussianWaveform>(0.2, 20.0, 5.0);
    auto y = std::make_shared<GaussianWaveform>(0.1, 20.0, 5.0);
    const double alpha = -mhz(250.0);
    QuadraturePair out = applyDrag(x, y, alpha);
    for (double t : {5.0, 12.0}) {
        EXPECT_NEAR(out.x->value(t),
                    x->value(t) + y->derivative(t) / alpha, 1e-9);
        EXPECT_NEAR(out.y->value(t),
                    y->value(t) - x->derivative(t) / alpha, 1e-9);
    }
}

TEST(DragTest, Validation)
{
    auto x = std::make_shared<GaussianWaveform>(0.2, 20.0, 5.0);
    EXPECT_THROW(applyDrag(x, nullptr, 0.0), UserError);
    EXPECT_THROW(applyDrag(nullptr, nullptr, 1.0), UserError);
}

TEST(DragTest, DurationPreserved)
{
    auto x = std::make_shared<GaussianWaveform>(0.2, 20.0, 5.0);
    QuadraturePair out = applyDrag(x, nullptr, -1.0);
    EXPECT_DOUBLE_EQ(out.x->duration(), 20.0);
    EXPECT_DOUBLE_EQ(out.y->duration(), 20.0);
}

} // namespace
} // namespace qzz::pulse
