#include "core/dcg.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "core/objectives.h"
#include "core/regions.h"
#include "linalg/expm.h"
#include "linalg/fidelity.h"
#include "ode/propagator.h"

namespace qzz::core {
namespace {

TEST(DcgTest, Durations)
{
    EXPECT_DOUBLE_EQ(dcgIdentity().duration, 40.0);
    EXPECT_DOUBLE_EQ(dcgSx().duration, 120.0);
}

TEST(DcgTest, IdentityImplementsIdentity)
{
    // Total rotation 2 pi = identity up to global phase.
    const double f =
        gateFidelity(dcgIdentity(), la::identity2(), 0.005);
    EXPECT_GT(f, 1.0 - 1e-8);
}

TEST(DcgTest, SxImplementsSqrtX)
{
    const la::CMatrix sx = la::expPauli(kPi / 4.0, 0.0, 0.0);
    const double f = gateFidelity(dcgSx(), sx, 0.005);
    EXPECT_GT(f, 1.0 - 1e-8);
}

TEST(DcgTest, IdentityEchoesFirstOrderCrosstalk)
{
    // The pi-pi sequence cancels the first-order ZZ term exactly.
    const double norm = firstOrderCrosstalkNorm(dcgIdentity(), 0.0,
                                                0.005);
    EXPECT_LT(norm, 1e-3);
    // Reference scale: doing nothing leaves norm ~ ||sz|| = sqrt(2).
    EXPECT_LT(norm, 0.01 * std::sqrt(2.0));
}

TEST(DcgTest, SxSuppressesCrosstalkVsGaussian)
{
    const la::CMatrix sx = la::expPauli(kPi / 4.0, 0.0, 0.0);
    const double lambda = khz(200.0);
    const double dcg_infid =
        oneQubitCrosstalkInfidelity(dcgSx(), sx, lambda, {}, 0.005);
    // Plain Gaussian SX of the same primitive duration.
    auto gauss = pulse::PulseLibrary::gaussian().get(
        pulse::PulseGate::SX);
    const double gauss_infid =
        oneQubitCrosstalkInfidelity(gauss, sx, lambda, {}, 0.005);
    EXPECT_LT(dcg_infid, gauss_infid / 3.0)
        << "dcg=" << dcg_infid << " gauss=" << gauss_infid;
}

TEST(DcgTest, LibraryHasNoTwoQubitProgram)
{
    pulse::PulseLibrary lib = dcgLibrary();
    EXPECT_TRUE(lib.has(pulse::PulseGate::SX));
    EXPECT_TRUE(lib.has(pulse::PulseGate::Identity));
    EXPECT_FALSE(lib.has(pulse::PulseGate::RZX));
}

} // namespace
} // namespace qzz::core
