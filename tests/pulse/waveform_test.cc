#include "pulse/waveform.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/units.h"

namespace qzz::pulse {
namespace {

TEST(GaussianTest, ZeroAtBoundaries)
{
    GaussianWaveform g(0.5, 20.0, 5.0);
    EXPECT_NEAR(g.value(0.0), 0.0, 1e-12);
    EXPECT_NEAR(g.value(20.0), 0.0, 1e-12);
    EXPECT_NEAR(g.value(10.0), 0.5, 1e-12); // peak at center
    EXPECT_EQ(g.value(-1.0), 0.0);
    EXPECT_EQ(g.value(21.0), 0.0);
}

TEST(GaussianTest, AreaCalibration)
{
    auto g = GaussianWaveform::withArea(kPi / 4.0, 20.0, 5.0);
    EXPECT_NEAR(g.area(), kPi / 4.0, 1e-9);
}

TEST(GaussianTest, DerivativeMatchesNumerical)
{
    GaussianWaveform g(0.3, 20.0, 5.0);
    for (double t : {3.0, 7.5, 10.0, 16.0}) {
        const double h = 1e-5;
        const double num = (g.value(t + h) - g.value(t - h)) / (2 * h);
        EXPECT_NEAR(g.derivative(t), num, 1e-6);
    }
}

TEST(FourierTest, ZeroAtBoundaries)
{
    FourierWaveform f({0.1, -0.05, 0.02, 0.0, 0.01}, 20.0);
    EXPECT_NEAR(f.value(0.0), 0.0, 1e-12);
    EXPECT_NEAR(f.value(20.0), 0.0, 1e-12);
}

TEST(FourierTest, ExactAreaMatchesNumeric)
{
    FourierWaveform f({0.1, -0.05, 0.02}, 20.0);
    EXPECT_NEAR(f.exactArea(), f.area(), 1e-9);
    EXPECT_NEAR(f.exactArea(), 20.0 / 2.0 * (0.1 - 0.05 + 0.02), 1e-12);
}

TEST(FourierTest, SingleHarmonicShape)
{
    // A_1 only: Omega(t) = A/2 (1 - cos(2 pi t / T)), peak A at T/2.
    FourierWaveform f({0.2}, 10.0);
    EXPECT_NEAR(f.value(5.0), 0.2, 1e-12);
    EXPECT_NEAR(f.value(2.5), 0.1, 1e-12);
}

TEST(FourierTest, DerivativeMatchesNumerical)
{
    FourierWaveform f({0.1, 0.07, -0.03}, 20.0);
    for (double t : {1.0, 8.0, 13.0, 19.0}) {
        const double h = 1e-5;
        const double num = (f.value(t + h) - f.value(t - h)) / (2 * h);
        EXPECT_NEAR(f.derivative(t), num, 1e-6);
    }
}

TEST(SequenceTest, ConcatenatesSegments)
{
    auto a = std::make_shared<ConstantWaveform>(1.0, 2.0);
    auto b = std::make_shared<ConstantWaveform>(-2.0, 3.0);
    SequenceWaveform seq({a, b});
    EXPECT_DOUBLE_EQ(seq.duration(), 5.0);
    EXPECT_DOUBLE_EQ(seq.value(1.0), 1.0);
    EXPECT_DOUBLE_EQ(seq.value(3.0), -2.0);
    EXPECT_DOUBLE_EQ(seq.value(6.0), 0.0);
}

TEST(SequenceTest, AreaAdds)
{
    auto a = std::make_shared<ConstantWaveform>(1.0, 2.0);
    auto b = std::make_shared<ConstantWaveform>(2.0, 1.0);
    SequenceWaveform seq({a, b});
    // Simpson over the step discontinuity converges only linearly.
    EXPECT_NEAR(seq.area(8001), 4.0, 1e-2);
}

TEST(ScaledTest, ScalesValueAndDerivative)
{
    auto base = std::make_shared<GaussianWaveform>(0.4, 20.0, 5.0);
    ScaledWaveform s(base, 0.5);
    EXPECT_NEAR(s.value(10.0), 0.2, 1e-12);
    EXPECT_NEAR(s.derivative(7.0), 0.5 * base->derivative(7.0), 1e-12);
    auto neg = negate(base);
    EXPECT_NEAR(neg->value(10.0), -0.4, 1e-12);
}

TEST(ZeroTest, AlwaysZero)
{
    ZeroWaveform z(15.0);
    EXPECT_EQ(z.value(7.0), 0.0);
    EXPECT_EQ(z.duration(), 15.0);
    EXPECT_NEAR(z.area(), 0.0, 1e-15);
}

TEST(WaveformTest, ValidationErrors)
{
    EXPECT_THROW(GaussianWaveform(1.0, -5.0, 1.0), UserError);
    EXPECT_THROW(FourierWaveform({}, 20.0), UserError);
    EXPECT_THROW(SequenceWaveform({}), UserError);
}

} // namespace
} // namespace qzz::pulse
