#include "pulse/library.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/units.h"

namespace qzz::pulse {
namespace {

TEST(LibraryTest, GaussianDefaultsPresent)
{
    PulseLibrary lib = PulseLibrary::gaussian();
    EXPECT_EQ(lib.name(), "Gaussian");
    EXPECT_TRUE(lib.has(PulseGate::SX));
    EXPECT_TRUE(lib.has(PulseGate::Identity));
    EXPECT_TRUE(lib.has(PulseGate::RZX));
}

TEST(LibraryTest, GaussianAreasCalibrated)
{
    PulseLibrary lib = PulseLibrary::gaussian();
    // SX: rotation pi/2 -> x-area pi/4.
    EXPECT_NEAR(lib.get(PulseGate::SX).x_a->area(), kPi / 4.0, 1e-8);
    // Identity = Rx(2 pi) -> area pi.
    EXPECT_NEAR(lib.get(PulseGate::Identity).x_a->area(), kPi, 1e-8);
    // RZX coupling channel: pi/4.
    EXPECT_NEAR(lib.get(PulseGate::RZX).coupling->area(), kPi / 4.0,
                1e-8);
}

TEST(LibraryTest, DurationsMatchConfiguredGateTime)
{
    PulseLibrary lib = PulseLibrary::gaussian(32.0);
    EXPECT_DOUBLE_EQ(lib.get(PulseGate::SX).duration, 32.0);
    EXPECT_DOUBLE_EQ(lib.get(PulseGate::RZX).duration, 32.0);
}

TEST(LibraryTest, MissingGateIsFatal)
{
    PulseLibrary lib("empty");
    EXPECT_THROW(lib.get(PulseGate::SX), UserError);
    EXPECT_FALSE(lib.has(PulseGate::SX));
}

TEST(LibraryTest, SetOverridesProgram)
{
    PulseLibrary lib("custom");
    auto wf = std::make_shared<GaussianWaveform>(0.1, 10.0, 2.5);
    lib.set(PulseGate::SX, PulseProgram::singleQubit(wf, nullptr));
    EXPECT_DOUBLE_EQ(lib.get(PulseGate::SX).duration, 10.0);
}

TEST(LibraryTest, TwoQubitProgramShape)
{
    PulseLibrary lib = PulseLibrary::gaussian();
    const PulseProgram &rzx = lib.get(PulseGate::RZX);
    EXPECT_TRUE(rzx.two_qubit);
    EXPECT_NE(rzx.coupling, nullptr);
    const PulseProgram &sx = lib.get(PulseGate::SX);
    EXPECT_FALSE(sx.two_qubit);
}

TEST(LibraryTest, ScaledProgram)
{
    PulseLibrary lib = PulseLibrary::gaussian();
    PulseProgram scaled = lib.get(PulseGate::SX).scaled(1.001);
    EXPECT_NEAR(scaled.x_a->area(),
                lib.get(PulseGate::SX).x_a->area() * 1.001, 1e-9);
}

TEST(LibraryTest, GateNames)
{
    EXPECT_EQ(pulseGateName(PulseGate::SX), "Rx(pi/2)");
    EXPECT_EQ(pulseGateName(PulseGate::Identity), "I");
    EXPECT_EQ(pulseGateName(PulseGate::RZX), "Rzx(pi/2)");
}

} // namespace
} // namespace qzz::pulse
