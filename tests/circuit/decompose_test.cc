#include "circuit/decompose.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/units.h"
#include "linalg/fidelity.h"

namespace qzz::ckt {
namespace {

/** Decompose a one-gate circuit and compare unitaries up to phase. */
void
expectEquivalent(const Gate &g, int n)
{
    QuantumCircuit c(n);
    c.add(g);
    QuantumCircuit native = decomposeToNative(c);
    EXPECT_TRUE(native.isNative()) << g.toString();
    EXPECT_LT(la::phaseDistance(native.unitary(), c.unitary()), 1e-9)
        << "decomposition changed the unitary of " << g.toString();
}

TEST(DecomposeTest, SingleQubitGates)
{
    expectEquivalent({GateKind::X, {0}}, 1);
    expectEquivalent({GateKind::Y, {0}}, 1);
    expectEquivalent({GateKind::Z, {0}}, 1);
    expectEquivalent({GateKind::H, {0}}, 1);
    expectEquivalent({GateKind::S, {0}}, 1);
    expectEquivalent({GateKind::SDG, {0}}, 1);
    expectEquivalent({GateKind::T, {0}}, 1);
    expectEquivalent({GateKind::TDG, {0}}, 1);
}

TEST(DecomposeTest, ParameterizedSingleQubitGates)
{
    Rng rng(3);
    for (int i = 0; i < 10; ++i) {
        const double th = rng.uniform(-kPi, kPi);
        expectEquivalent({GateKind::RX, {0}, {th}}, 1);
        expectEquivalent({GateKind::RY, {0}, {th}}, 1);
        expectEquivalent({GateKind::RZ, {0}, {th}}, 1);
        expectEquivalent({GateKind::U3,
                          {0},
                          {rng.uniform(0.0, kPi),
                           rng.uniform(-kPi, kPi),
                           rng.uniform(-kPi, kPi)}},
                         1);
    }
}

TEST(DecomposeTest, TwoQubitGatesBothOrientations)
{
    expectEquivalent({GateKind::CX, {0, 1}}, 2);
    expectEquivalent({GateKind::CX, {1, 0}}, 2);
    expectEquivalent({GateKind::CZ, {0, 1}}, 2);
    expectEquivalent({GateKind::SWAP, {0, 1}}, 2);
    for (double th : {0.3, -1.2, kPi / 2.0}) {
        expectEquivalent({GateKind::CP, {0, 1}, {th}}, 2);
        expectEquivalent({GateKind::RZZ, {0, 1}, {th}}, 2);
    }
}

TEST(DecomposeTest, WholeCircuitEquivalence)
{
    Rng rng(9);
    QuantumCircuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.cp(1, 2, 0.77);
    c.rzz(0, 2, -0.4);
    c.u3(1, 0.3, 0.2, 0.1);
    c.swap(0, 2);
    QuantumCircuit native = decomposeToNative(c);
    EXPECT_TRUE(native.isNative());
    EXPECT_LT(la::phaseDistance(native.unitary(), c.unitary()), 1e-8);
}

TEST(DecomposeTest, OnlyAdjacentPairsTouched)
{
    QuantumCircuit c(3);
    c.cx(0, 2);
    QuantumCircuit native = decomposeToNative(c);
    for (const Gate &g : native.gates())
        if (g.isTwoQubit()) {
            EXPECT_EQ((g.qubits[0] == 0 && g.qubits[1] == 2) ||
                          (g.qubits[0] == 2 && g.qubits[1] == 0),
                      true);
        }
}

TEST(MergeRzTest, ConsecutiveRzCombine)
{
    QuantumCircuit c(1);
    c.rz(0, 0.3);
    c.rz(0, 0.4);
    c.sx(0);
    c.rz(0, -0.4);
    QuantumCircuit merged = mergeRz(c);
    int rz_count = 0;
    for (const Gate &g : merged.gates())
        if (g.kind == GateKind::RZ)
            ++rz_count;
    EXPECT_EQ(rz_count, 2);
    EXPECT_LT(la::phaseDistance(merged.unitary(), c.unitary()), 1e-12);
}

TEST(MergeRzTest, ZeroAnglesDropped)
{
    QuantumCircuit c(1);
    c.rz(0, 0.5);
    c.rz(0, -0.5);
    c.sx(0);
    QuantumCircuit merged = mergeRz(c);
    EXPECT_EQ(merged.size(), 1u);
    EXPECT_EQ(merged.gates()[0].kind, GateKind::SX);
}

TEST(MergeRzTest, TrailingRzFlushed)
{
    QuantumCircuit c(2);
    c.sx(0);
    c.rz(0, 0.7);
    c.rz(1, 0.2);
    QuantumCircuit merged = mergeRz(c);
    EXPECT_LT(la::phaseDistance(merged.unitary(), c.unitary()), 1e-12);
}

TEST(DecomposeTest, NativePassthrough)
{
    QuantumCircuit c(2);
    c.sx(0);
    c.idle(1);
    c.rzx(0, 1, kPi / 2.0);
    QuantumCircuit native = decomposeToNative(c);
    EXPECT_EQ(native.size(), 3u);
}

} // namespace
} // namespace qzz::ckt
