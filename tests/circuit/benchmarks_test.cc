#include "circuit/benchmarks.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/units.h"
#include "sim/ideal_sim.h"

namespace qzz::ckt {
namespace {

TEST(BenchmarksTest, HiddenShiftRecoversShift)
{
    // The HS circuit maps |0..0> to the basis state |shift>; verify
    // the output is a computational basis state.
    Rng rng(41);
    QuantumCircuit c = hiddenShift(4, rng);
    sim::StateVector out = sim::runIdealCircuit(c);
    int support = 0;
    for (const auto &a : out.amplitudes())
        if (std::norm(a) > 1e-9)
            ++support;
    EXPECT_EQ(support, 1);
}

TEST(BenchmarksTest, HiddenShiftDifferentSeedsDifferentShifts)
{
    Rng r1(1), r2(2);
    QuantumCircuit a = hiddenShift(6, r1);
    QuantumCircuit b = hiddenShift(6, r2);
    // X-gate patterns differ with overwhelming probability.
    EXPECT_NE(a.size(), 0u);
    int xa = 0, xb = 0;
    for (const Gate &g : a.gates())
        if (g.kind == GateKind::X)
            ++xa;
    for (const Gate &g : b.gates())
        if (g.kind == GateKind::X)
            ++xb;
    EXPECT_TRUE(xa != xb || a.size() != b.size());
}

TEST(BenchmarksTest, QftMatchesAnalyticUnitary)
{
    const int n = 3;
    QuantumCircuit c = qft(n);
    la::CMatrix u = c.unitary();
    const size_t dim = 8;
    const la::cplx w = std::exp(la::kI * kTwoPi / double(dim));
    for (size_t r = 0; r < dim; ++r)
        for (size_t col = 0; col < dim; ++col) {
            const la::cplx want =
                std::pow(w, double(r * col)) / std::sqrt(double(dim));
            EXPECT_NEAR(std::abs(u(r, col) - want), 0.0, 1e-10)
                << r << "," << col;
        }
}

TEST(BenchmarksTest, QpePeaksAtEncodedPhase)
{
    // phase = 5/16 with 4 counting bits is exactly representable:
    // the counting register must read 0101 with probability 1.
    QuantumCircuit c = qpe(5);
    sim::StateVector out = sim::runIdealCircuit(c);
    // Counting qubits 0..3 (qubit 0 = MSB of the phase), target = |1>.
    // Expected basis state: 0101 1 -> index 0b01011 = 11.
    EXPECT_NEAR(std::norm(out.amplitudes()[11]), 1.0, 1e-9);
}

TEST(BenchmarksTest, QaoaStructure)
{
    Rng rng(5);
    QuantumCircuit c = qaoaMaxCut(6, 1, rng);
    int h_count = 0, rzz_count = 0, rx_count = 0;
    for (const Gate &g : c.gates()) {
        if (g.kind == GateKind::H)
            ++h_count;
        if (g.kind == GateKind::RZZ)
            ++rzz_count;
        if (g.kind == GateKind::RX)
            ++rx_count;
    }
    EXPECT_EQ(h_count, 6);
    EXPECT_EQ(rx_count, 6);
    EXPECT_GE(rzz_count, 6); // ring + chords
}

TEST(BenchmarksTest, IsingLayerCount)
{
    QuantumCircuit c = isingChain(5, 3);
    int rzz = 0, rx = 0;
    for (const Gate &g : c.gates()) {
        if (g.kind == GateKind::RZZ)
            ++rzz;
        if (g.kind == GateKind::RX)
            ++rx;
    }
    EXPECT_EQ(rzz, 3 * 4);
    EXPECT_EQ(rx, 3 * 5);
}

TEST(BenchmarksTest, GrcAvoidsRepeatedSingleQubitGates)
{
    Rng rng(7);
    QuantumCircuit c = googleRandom(4, 8, rng);
    // Per qubit, consecutive 1q gate kinds differ.
    std::vector<GateKind> last(4, GateKind::CZ);
    for (const Gate &g : c.gates()) {
        if (g.isTwoQubit())
            continue;
        EXPECT_NE(g.kind, last[g.qubits[0]]);
        last[g.qubits[0]] = g.kind;
    }
}

TEST(BenchmarksTest, QuantumVolumeGateCount)
{
    Rng rng(11);
    QuantumCircuit c = quantumVolume(6, 2, rng);
    int cx = 0;
    for (const Gate &g : c.gates())
        if (g.kind == GateKind::CX)
            ++cx;
    EXPECT_EQ(cx, 2 * 3 * 3); // depth * pairs * 3 CX
}

TEST(BenchmarksTest, SuiteHas21Instances)
{
    Rng rng(2022);
    auto suite = paperBenchmarkSuite(rng);
    EXPECT_EQ(suite.size(), 21u);
    EXPECT_EQ(suite[0].label, "HS-4");
    EXPECT_EQ(suite.back().label, "GRC-12");
}

TEST(BenchmarksTest, SuiteWithQvHas25Instances)
{
    Rng rng(2022);
    auto suite = paperBenchmarkSuiteWithQv(rng);
    EXPECT_EQ(suite.size(), 25u);
    EXPECT_EQ(suite.back().label, "QV-12");
}

TEST(BenchmarksTest, SuiteIsDeterministic)
{
    Rng r1(99), r2(99);
    auto s1 = paperBenchmarkSuite(r1);
    auto s2 = paperBenchmarkSuite(r2);
    ASSERT_EQ(s1.size(), s2.size());
    for (size_t i = 0; i < s1.size(); ++i)
        EXPECT_EQ(s1[i].circuit.size(), s2[i].circuit.size());
}

} // namespace
} // namespace qzz::ckt
