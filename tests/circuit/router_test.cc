#include "circuit/router.h"

#include <gtest/gtest.h>

#include "circuit/decompose.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/units.h"
#include "graph/topologies.h"
#include "linalg/fidelity.h"
#include "sim/ideal_sim.h"

namespace qzz::ckt {
namespace {

TEST(RouterTest, AdjacentGatesPassThrough)
{
    auto topo = graph::lineTopology(3);
    QuantumCircuit c(3);
    c.cx(0, 1);
    c.cx(1, 2);
    RoutedCircuit r = routeCircuit(c, topo.g);
    EXPECT_EQ(r.swaps_inserted, 0);
    EXPECT_TRUE(respectsConnectivity(r.circuit, topo.g));
}

TEST(RouterTest, DistantGateGetsSwaps)
{
    auto topo = graph::lineTopology(4);
    QuantumCircuit c(4);
    c.cx(0, 3);
    RoutedCircuit r = routeCircuit(c, topo.g);
    EXPECT_EQ(r.swaps_inserted, 2);
    EXPECT_TRUE(respectsConnectivity(r.circuit, topo.g));
}

TEST(RouterTest, LayoutTracksMovedQubits)
{
    auto topo = graph::lineTopology(4);
    QuantumCircuit c(4);
    c.cx(0, 3);
    RoutedCircuit r = routeCircuit(c, topo.g);
    // Logical 0 walked toward 3.
    EXPECT_EQ(r.final_layout[0], 2);
}

TEST(RouterTest, SemanticsPreservedUpToFinalLayout)
{
    // Simulate routed vs original; undo the final permutation with
    // ideal SWAPs and compare states.
    Rng rng(17);
    auto topo = graph::gridTopology(2, 3);
    QuantumCircuit c(6);
    c.h(0);
    c.cx(0, 4);
    c.cx(1, 5);
    c.cp(2, 3, 0.9);
    c.cx(4, 2);

    RoutedCircuit r = routeCircuit(c, topo.g);
    ASSERT_TRUE(respectsConnectivity(r.circuit, topo.g));

    sim::StateVector routed = sim::runIdealCircuit(r.circuit);
    // Undo layout: move logical qubit l from final_layout[l] to l.
    QuantumCircuit undo(6);
    std::vector<int> where = r.final_layout;
    for (int l = 0; l < 6; ++l) {
        if (where[l] == l)
            continue;
        // Find which logical sits at l and swap.
        int other = -1;
        for (int k = 0; k < 6; ++k)
            if (where[k] == l)
                other = k;
        undo.swap(where[l], l);
        std::swap(where[l], where[other]);
    }
    for (const Gate &g : undo.gates())
        sim::applyGateIdeal(g, routed);

    sim::StateVector original = sim::runIdealCircuit(c);
    EXPECT_NEAR(routed.fidelity(original), 1.0, 1e-9);
}

TEST(RouterTest, RandomCircuitsRouteLegally)
{
    Rng rng(23);
    auto topo = graph::gridTopology(3, 3);
    for (int trial = 0; trial < 10; ++trial) {
        QuantumCircuit c(9);
        for (int g = 0; g < 15; ++g) {
            int a = rng.uniformInt(0, 8), b = rng.uniformInt(0, 8);
            if (a == b)
                continue;
            c.cx(a, b);
        }
        RoutedCircuit r = routeCircuit(c, topo.g);
        EXPECT_TRUE(respectsConnectivity(r.circuit, topo.g));
        // Lowering keeps connectivity: SWAP/CX map onto the same pair.
        QuantumCircuit native = decomposeToNative(r.circuit);
        EXPECT_TRUE(respectsConnectivity(native, topo.g));
    }
}

TEST(RouterTest, CircuitLargerThanDeviceRejected)
{
    auto topo = graph::lineTopology(2);
    QuantumCircuit c(3);
    c.h(0);
    EXPECT_THROW(routeCircuit(c, topo.g), UserError);
}

TEST(RouterTest, InitialLayoutRespected)
{
    auto topo = graph::lineTopology(3);
    QuantumCircuit c(2);
    c.cx(0, 1);
    RoutedCircuit r = routeCircuit(c, topo.g, {2, 1});
    ASSERT_TRUE(respectsConnectivity(r.circuit, topo.g));
    EXPECT_EQ(r.swaps_inserted, 0);
    // The emitted gate acts on physical {2, 1}.
    for (const Gate &g : r.circuit.gates())
        if (g.isTwoQubit()) {
            EXPECT_EQ(g.qubits, (std::vector<int>{2, 1}));
        }
}

} // namespace
} // namespace qzz::ckt
