#include "circuit/dag.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace qzz::ckt {
namespace {

TEST(DagTest, InitialFrontierIsFirstGatePerQubit)
{
    QuantumCircuit c(3);
    c.h(0);      // 0
    c.h(1);      // 1
    c.cx(0, 1);  // 2
    c.h(2);      // 3
    DagFrontier f(c);
    EXPECT_EQ(f.schedulable(), (std::vector<int>{0, 1, 3}));
}

TEST(DagTest, TwoQubitGateWaitsForBothOperands)
{
    QuantumCircuit c(2);
    c.h(0);     // 0
    c.cx(0, 1); // 1
    DagFrontier f(c);
    EXPECT_EQ(f.schedulable(), (std::vector<int>{0}));
    f.markScheduled(0);
    EXPECT_EQ(f.schedulable(), (std::vector<int>{1}));
}

TEST(DagTest, MarkingNonSchedulableIsFatal)
{
    QuantumCircuit c(2);
    c.h(0);
    c.cx(0, 1);
    DagFrontier f(c);
    EXPECT_THROW(f.markScheduled(1), UserError);
    f.markScheduled(0);
    EXPECT_THROW(f.markScheduled(0), UserError); // double schedule
}

TEST(DagTest, DrainsWholeCircuit)
{
    QuantumCircuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.cx(1, 2);
    c.h(2);
    c.cx(0, 2);
    DagFrontier f(c);
    int scheduled = 0;
    while (!f.done()) {
        auto ready = f.schedulable();
        ASSERT_FALSE(ready.empty());
        for (int gi : ready) {
            f.markScheduled(gi);
            ++scheduled;
        }
    }
    EXPECT_EQ(scheduled, int(c.size()));
    EXPECT_TRUE(f.schedulable().empty());
}

TEST(DagTest, RespectsPerQubitOrder)
{
    QuantumCircuit c(1);
    c.h(0);
    c.x(0);
    c.z(0);
    DagFrontier f(c);
    EXPECT_EQ(f.schedulable(), (std::vector<int>{0}));
    f.markScheduled(0);
    EXPECT_EQ(f.schedulable(), (std::vector<int>{1}));
    f.markScheduled(1);
    EXPECT_EQ(f.schedulable(), (std::vector<int>{2}));
}

TEST(DagTest, IndependentChainsProgressIndependently)
{
    QuantumCircuit c(4);
    c.h(0);
    c.h(0);
    c.h(2);
    DagFrontier f(c);
    f.markScheduled(2); // qubit 2's gate
    auto ready = f.schedulable();
    EXPECT_EQ(ready, (std::vector<int>{0}));
}

} // namespace
} // namespace qzz::ckt
