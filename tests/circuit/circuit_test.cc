#include "circuit/circuit.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/units.h"
#include "linalg/fidelity.h"

namespace qzz::ckt {
namespace {

TEST(CircuitTest, BuilderAddsGates)
{
    QuantumCircuit c(3, "demo");
    c.h(0);
    c.cx(0, 1);
    c.rz(2, 0.5);
    EXPECT_EQ(c.size(), 3u);
    EXPECT_EQ(c.twoQubitCount(), 1);
    EXPECT_EQ(c.name(), "demo");
}

TEST(CircuitTest, ValidatesOperands)
{
    QuantumCircuit c(2);
    EXPECT_THROW(c.h(5), UserError);
    EXPECT_THROW(c.cx(0, 0), UserError);
    EXPECT_THROW(c.add(Gate(GateKind::CX, {0})), UserError);
}

TEST(CircuitTest, NativePredicate)
{
    QuantumCircuit c(2);
    c.sx(0);
    c.rz(0, 1.0);
    c.rzx(0, 1, kPi / 2.0);
    EXPECT_TRUE(c.isNative());
    c.h(1);
    EXPECT_FALSE(c.isNative());
}

TEST(CircuitTest, UnitaryComposesInOrder)
{
    QuantumCircuit c(1);
    c.h(0);
    c.z(0);
    c.h(0);
    // HZH = X.
    la::CMatrix x = gateMatrix({GateKind::X, {0}});
    EXPECT_LT(la::phaseDistance(c.unitary(), x), 1e-12);
}

TEST(CircuitTest, BellCircuitUnitary)
{
    QuantumCircuit c(2);
    c.h(0);
    c.cx(0, 1);
    la::CMatrix u = c.unitary();
    // |00> -> (|00> + |11>)/sqrt(2).
    EXPECT_NEAR(std::abs(u(0, 0)), 1.0 / std::sqrt(2.0), 1e-12);
    EXPECT_NEAR(std::abs(u(3, 0)), 1.0 / std::sqrt(2.0), 1e-12);
    EXPECT_NEAR(std::abs(u(1, 0)), 0.0, 1e-12);
}

TEST(CircuitTest, UnitaryIsUnitary)
{
    QuantumCircuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.cp(1, 2, 0.7);
    c.swap(0, 2);
    EXPECT_TRUE(c.unitary().isUnitary(1e-11));
}

} // namespace
} // namespace qzz::ckt
