#include "circuit/gate.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "linalg/expm.h"

namespace qzz::ckt {
namespace {

using la::CMatrix;
using la::distance;
using la::kron;

TEST(GateTest, NativePredicate)
{
    EXPECT_TRUE(Gate(GateKind::SX, {0}).isNative());
    EXPECT_TRUE(Gate(GateKind::I, {0}).isNative());
    EXPECT_TRUE(Gate(GateKind::RZ, {0}, {0.3}).isNative());
    EXPECT_TRUE(Gate(GateKind::RZX, {0, 1}, {kPi / 2.0}).isNative());
    EXPECT_FALSE(Gate(GateKind::RZX, {0, 1}, {kPi / 4.0}).isNative());
    EXPECT_FALSE(Gate(GateKind::H, {0}).isNative());
    EXPECT_FALSE(Gate(GateKind::CX, {0, 1}).isNative());
}

TEST(GateTest, VirtualPredicate)
{
    EXPECT_TRUE(Gate(GateKind::RZ, {0}, {0.1}).isVirtual());
    EXPECT_FALSE(Gate(GateKind::SX, {0}).isVirtual());
}

TEST(GateTest, SxSquaredIsX)
{
    CMatrix sx = gateMatrix({GateKind::SX, {0}});
    CMatrix x = gateMatrix({GateKind::X, {0}});
    EXPECT_LT(la::phaseDistance(sx * sx, x), 1e-12);
}

TEST(GateTest, HadamardSelfInverse)
{
    CMatrix h = gateMatrix({GateKind::H, {0}});
    EXPECT_TRUE((h * h).isIdentity(1e-12));
}

TEST(GateTest, SAndTPowers)
{
    CMatrix s = gateMatrix({GateKind::S, {0}});
    CMatrix t = gateMatrix({GateKind::T, {0}});
    CMatrix z = gateMatrix({GateKind::Z, {0}});
    EXPECT_LT(distance(s * s, z), 1e-12);
    EXPECT_LT(distance(t * t, s), 1e-12);
    CMatrix sdg = gateMatrix({GateKind::SDG, {0}});
    EXPECT_TRUE((s * sdg).isIdentity(1e-12));
    CMatrix tdg = gateMatrix({GateKind::TDG, {0}});
    EXPECT_TRUE((t * tdg).isIdentity(1e-12));
}

TEST(GateTest, RotationsMatchExponentials)
{
    const double th = 0.987;
    EXPECT_LT(distance(gateMatrix({GateKind::RX, {0}, {th}}),
                       la::expPauli(th / 2.0, 0.0, 0.0)),
              1e-12);
    EXPECT_LT(distance(gateMatrix({GateKind::RY, {0}, {th}}),
                       la::expPauli(0.0, th / 2.0, 0.0)),
              1e-12);
    EXPECT_LT(distance(gateMatrix({GateKind::RZ, {0}, {th}}),
                       la::expPauli(0.0, 0.0, th / 2.0)),
              1e-12);
}

TEST(GateTest, U3Specializations)
{
    // U3(theta, -pi/2, pi/2) = RX(theta); U3(theta, 0, 0) = RY(theta).
    const double th = 1.1;
    EXPECT_LT(la::phaseDistance(
                  gateMatrix({GateKind::U3, {0}, {th, -kPi / 2, kPi / 2}}),
                  gateMatrix({GateKind::RX, {0}, {th}})),
              1e-12);
    EXPECT_LT(la::phaseDistance(
                  gateMatrix({GateKind::U3, {0}, {th, 0.0, 0.0}}),
                  gateMatrix({GateKind::RY, {0}, {th}})),
              1e-12);
}

TEST(GateTest, CxActsOnBasis)
{
    CMatrix cx = gateMatrix({GateKind::CX, {0, 1}});
    // |10> -> |11>.
    EXPECT_EQ(cx(3, 2), la::cplx(1.0));
    EXPECT_EQ(cx(2, 3), la::cplx(1.0));
    EXPECT_EQ(cx(0, 0), la::cplx(1.0));
}

TEST(GateTest, CzIsDiagonal)
{
    CMatrix cz = gateMatrix({GateKind::CZ, {0, 1}});
    EXPECT_EQ(cz(3, 3), la::cplx(-1.0));
    EXPECT_EQ(cz(2, 2), la::cplx(1.0));
}

TEST(GateTest, RzxBlockStructure)
{
    // Rzx(pi/2) = |0><0| (x) Rx(pi/2) + |1><1| (x) Rx(-pi/2).
    CMatrix rzx = gateMatrix({GateKind::RZX, {0, 1}, {kPi / 2.0}});
    CMatrix rxp = la::expPauli(kPi / 4.0, 0.0, 0.0);
    CMatrix rxm = la::expPauli(-kPi / 4.0, 0.0, 0.0);
    for (int r = 0; r < 2; ++r)
        for (int c = 0; c < 2; ++c) {
            EXPECT_NEAR(std::abs(rzx(r, c) - rxp(r, c)), 0.0, 1e-12);
            EXPECT_NEAR(std::abs(rzx(2 + r, 2 + c) - rxm(r, c)), 0.0,
                        1e-12);
        }
}

TEST(GateTest, RzzIsDiagonalPhase)
{
    const double th = 0.4;
    CMatrix rzz = gateMatrix({GateKind::RZZ, {0, 1}, {th}});
    EXPECT_NEAR(std::abs(rzz(0, 0) - std::exp(-la::kI * th / 2.0)), 0.0,
                1e-12);
    EXPECT_NEAR(std::abs(rzz(1, 1) - std::exp(la::kI * th / 2.0)), 0.0,
                1e-12);
}

TEST(GateTest, SwapMatrix)
{
    CMatrix sw = gateMatrix({GateKind::SWAP, {0, 1}});
    EXPECT_EQ(sw(1, 2), la::cplx(1.0));
    EXPECT_EQ(sw(2, 1), la::cplx(1.0));
    EXPECT_TRUE((sw * sw).isIdentity(1e-12));
}

TEST(GateTest, CpMatchesDefinition)
{
    const double th = 1.3;
    CMatrix cp = gateMatrix({GateKind::CP, {0, 1}, {th}});
    EXPECT_NEAR(std::abs(cp(3, 3) - std::exp(la::kI * th)), 0.0, 1e-12);
    EXPECT_EQ(cp(1, 1), la::cplx(1.0));
}

TEST(GateTest, AllMatricesUnitary)
{
    std::vector<Gate> gates = {
        {GateKind::SX, {0}},
        {GateKind::H, {0}},
        {GateKind::U3, {0}, {0.3, 1.2, -0.4}},
        {GateKind::RZX, {0, 1}, {kPi / 2.0}},
        {GateKind::CX, {0, 1}},
        {GateKind::CP, {0, 1}, {0.9}},
        {GateKind::RZZ, {0, 1}, {0.7}},
        {GateKind::SWAP, {0, 1}},
    };
    for (const Gate &g : gates)
        EXPECT_TRUE(gateMatrix(g).isUnitary(1e-12)) << g.toString();
}

TEST(GateTest, ToStringFormat)
{
    Gate g(GateKind::CX, {2, 3});
    EXPECT_EQ(g.toString(), "CX[2,3]");
}

} // namespace
} // namespace qzz::ckt
