/**
 * @file
 * Domain example: inspect the layers ZZXSched builds and sweep the
 * alpha knob of the optimal-suppression objective (NQ vs NC
 * trade-off, Fig. 10 of the paper).
 */

#include <iostream>

#include "qzz.h"

namespace {

/** Render one layer's driven set as a grid diagram. */
void
printLayer(const qzz::core::Layer &layer, int rows, int cols)
{
    using qzz::core::ScheduledGate;
    if (layer.is_virtual) {
        std::cout << "  virtual layer (" << layer.gates.size()
                  << " RZ)\n";
        return;
    }
    std::cout << "  duration " << layer.duration
              << " ns, NQ=" << layer.metrics.nq
              << ", NC=" << layer.metrics.nc << "\n";
    for (int r = 0; r < rows; ++r) {
        std::cout << "    ";
        for (int c = 0; c < cols; ++c) {
            const int q = r * cols + c;
            std::cout << (layer.side[q] ? 'X' : '.');
        }
        std::cout << "\n";
    }
}

} // namespace

int
main()
{
    using namespace qzz;

    const int rows = 3, cols = 4;
    Rng rng(5);
    dev::Device device(graph::gridTopology(rows, cols),
                       dev::DeviceParams{}, rng);

    Rng crng(9);
    ckt::QuantumCircuit circuit = ckt::isingChain(12, 1);
    ckt::QuantumCircuit native = ckt::decomposeToNative(
        ckt::routeCircuit(circuit, device.graph()).circuit);

    core::Schedule sched = core::zzxSchedule(
        native, device, core::GateDurations{});
    std::cout << "Ising-12 on a " << rows << "x" << cols
              << " grid: " << sched.physicalLayerCount()
              << " physical layers, " << sched.executionTime()
              << " ns total\n\nFirst layers (X = driven/pulsed):\n";
    int shown = 0;
    for (const core::Layer &l : sched.layers) {
        if (l.is_virtual)
            continue;
        printLayer(l, rows, cols);
        if (++shown == 4)
            break;
    }

    // Alpha sweep: the Definition 5.1 trade-off on a non-bipartite
    // topology (triangulated grid).
    std::cout << "\nalpha sweep on trigrid-3x3 (Definition 5.1):\n";
    core::SuppressionSolver solver(
        graph::triangulatedGridTopology(3, 3));
    Table table({"alpha", "NQ", "NC", "alpha*NQ+NC"});
    for (double alpha : {0.0, 0.25, 0.5, 1.0, 2.0, 5.0}) {
        core::SuppressionOptions opt;
        opt.alpha = alpha;
        opt.top_k = 4;
        auto res = solver.solve({}, opt);
        table.addRow({formatF(alpha, 2),
                      std::to_string(res.metrics.nq),
                      std::to_string(res.metrics.nc),
                      formatF(res.metrics.objective(alpha), 2)});
    }
    table.print(std::cout);
    return 0;
}
