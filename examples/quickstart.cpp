/**
 * @file
 * Quickstart: compile a small circuit with pulse & scheduling
 * co-optimization and compare its fidelity against the baseline.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "qzz.h"

int
main()
{
    using namespace qzz;

    // 1. A device: 2x3 grid with ZZ couplings ~ N(200 kHz, 50 kHz).
    Rng rng(42);
    dev::Device device(graph::gridTopology(2, 3), dev::DeviceParams{},
                       rng);

    // 2. A circuit: 6-qubit GHZ state.
    ckt::QuantumCircuit circuit(6, "GHZ-6");
    circuit.h(0);
    for (int q = 0; q + 1 < 6; ++q)
        circuit.cx(q, q + 1);

    // 3. Compile + simulate under both policies.  Each configuration
    //    is a Compiler: an explicit route -> lower -> schedule ->
    //    attach-pulses pass pipeline bound to the device.
    Table table({"configuration", "fidelity", "exec time (ns)",
                 "layers", "mean NC"});
    for (auto [pulse, sched] :
         {std::pair{core::PulseMethod::Gaussian, core::SchedPolicy::Par},
          {core::PulseMethod::Pert, core::SchedPolicy::Zzx}}) {
        core::Compiler compiler = core::CompilerBuilder(device)
                                      .pulseMethod(pulse)
                                      .schedPolicy(sched)
                                      .build();
        exp::FidelityResult res =
            exp::evaluateFidelity(circuit, compiler);
        table.addRow({exp::configName(compiler.options()),
                      formatF(res.fidelity, 4),
                      formatF(res.execution_time, 0),
                      std::to_string(res.physical_layers),
                      formatF(res.mean_nc, 2)});
    }
    table.setTitle("GHZ-6 under always-on ZZ crosstalk");
    table.print(std::cout);

    std::cout << "\nThe Pert+ZZXSched row shows the paper's"
                 " co-optimization: optimized pulses suppress\n"
                 "cross-region crosstalk and the scheduler shapes each"
                 " layer into a low-NC cut.\n";
    return 0;
}
