/**
 * @file
 * Domain example: measuring effective ZZ strength with Ramsey
 * experiments on a simulated 3-qubit chain (Sec. 7.4 of the paper).
 */

#include <iostream>

#include "qzz.h"

int
main()
{
    using namespace qzz;

    const pulse::PulseLibrary gaussian = pulse::PulseLibrary::gaussian();
    const pulse::PulseLibrary dcg = core::dcgLibrary();

    sim::RamseyConfig base;
    base.lambda12 = khz(50.0);
    base.lambda23 = khz(50.0);
    base.segments = 400;

    Table table({"circuit", "pulses", "probe", "f(|0>) MHz",
                 "f(|1>) MHz", "effective ZZ (kHz)"});

    struct Case
    {
        sim::RamseyCircuit circuit;
        const pulse::PulseLibrary *lib;
        const char *name;
    };
    const Case cases[] = {
        {sim::RamseyCircuit::A, &gaussian, "A (idle)"},
        {sim::RamseyCircuit::B, &dcg, "B (DCG I on Q2)"},
        {sim::RamseyCircuit::C, &dcg, "C (DCG I on Q1,Q3)"},
    };

    for (const Case &c : cases) {
        sim::RamseyConfig cfg = base;
        cfg.circuit = c.circuit;
        cfg.library = c.lib;
        sim::ZzMeasurement zz = measureEffectiveZz(cfg, true, false);
        table.addRow({c.name, c.lib->name(), "Q1",
                      formatF(zz.f_ground * 1e3, 4),
                      formatF(zz.f_excited * 1e3, 4),
                      formatF(zz.zz_khz, 1)});
    }
    table.setTitle(
        "Ramsey probe of Q2-Q1 coupling (paper: ~200 kHz -> <11 kHz)");
    table.print(std::cout);

    std::cout << "\nCompiled circuit B tiles the wait time with"
                 " ZZ-suppressing identity pulses on Q2;\ncircuit C"
                 " protects from the neighbor side instead.\n";
    return 0;
}
