/**
 * @file
 * Example: compile a circuit and export the full schedule — layers,
 * cuts, supplemented identities and sampled pulse waveforms — as JSON
 * for a control-electronics backend or a plotting notebook.
 *
 * Usage: export_schedule [output.json] [pulse_method] [sched_policy]
 *        (defaults: qzz_schedule.json, Pert, ZZXSched)
 */

#include <fstream>
#include <iostream>

#include "qzz.h"

namespace {

void
printUsage(std::ostream &os)
{
    os << "Usage: export_schedule [output.json] [pulse_method] "
          "[sched_policy]\n"
          "\n"
          "Compiles a 6-qubit QAOA MaxCut circuit for a 2x3 grid\n"
          "device and writes the schedule (layers, cuts, sampled\n"
          "pulse waveforms) as JSON.\n"
          "\n"
          "  output.json   output path (default: qzz_schedule.json)\n"
          "  pulse_method  one of: "
       << qzz::joinNames(qzz::core::pulseMethodNames())
       << " (default: Pert)\n"
          "  sched_policy  one of: "
       << qzz::joinNames(qzz::core::schedPolicyNames())
       << " (default: ZZXSched)\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace qzz;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            printUsage(std::cout);
            return 0;
        }
    }
    if (argc > 4) {
        std::cerr << "export_schedule: too many arguments\n";
        printUsage(std::cerr);
        return 1;
    }

    const std::string path =
        argc > 1 ? argv[1] : "qzz_schedule.json";
    // The configuration round-trips through the same names the JSON
    // document carries (pulseMethodName / schedPolicyName).
    core::CompileOptions opt; // Pert + ZZXSched
    if (argc > 2) {
        auto method = core::pulseMethodFromName(argv[2]);
        if (!method) {
            std::cerr << "export_schedule: unknown pulse method '"
                      << argv[2] << "' (one of: "
                      << joinNames(core::pulseMethodNames()) << ")\n";
            return 1;
        }
        opt.pulse = *method;
    }
    if (argc > 3) {
        auto policy = core::schedPolicyFromName(argv[3]);
        if (!policy) {
            std::cerr << "export_schedule: unknown scheduling policy '"
                      << argv[3] << "' (one of: "
                      << joinNames(core::schedPolicyNames()) << ")\n";
            return 1;
        }
        opt.sched = *policy;
    }

    Rng rng(21);
    dev::Device device(graph::gridTopology(2, 3), dev::DeviceParams{},
                       rng);
    Rng crng(3);
    ckt::QuantumCircuit circuit = ckt::qaoaMaxCut(6, 1, crng);

    core::Compiler compiler =
        core::CompilerBuilder(device).options(opt).build();
    core::CompileResult result = compiler.compile(circuit);
    if (!result.ok()) {
        std::cerr << "compile failed in pass '" << result.status.pass
                  << "': " << result.status.message << "\n";
        return 1;
    }

    std::ofstream out(path);
    if (!out) {
        std::cerr << "cannot open " << path << "\n";
        return 1;
    }
    core::ScheduleIoOptions io;
    io.sample_dt = 0.5; // 2 GS/s sampling
    core::writeCompiledProgramJson(result.program, out, io);

    const core::CompiledProgram &prog = result.program;
    std::cout << "wrote " << path << ": "
              << prog.schedule.physicalLayerCount()
              << " physical layers, "
              << prog.schedule.executionTime() << " ns, pulses from '"
              << prog.library->name() << "'\n";
    for (const core::StageDiagnostics &stage :
         result.diagnostics.stages)
        std::cout << "  " << stage.stage << ": "
                  << formatF(stage.wall_ms, 2) << " ms\n";
    return 0;
}
