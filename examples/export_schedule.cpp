/**
 * @file
 * Example: compile a circuit and export the full schedule — layers,
 * cuts, supplemented identities and sampled pulse waveforms — as JSON
 * for a control-electronics backend or a plotting notebook.
 *
 * Usage: export_schedule [output.json]   (default: qzz_schedule.json)
 */

#include <fstream>
#include <iostream>

#include "qzz.h"

int
main(int argc, char **argv)
{
    using namespace qzz;

    Rng rng(21);
    dev::Device device(graph::gridTopology(2, 3), dev::DeviceParams{},
                       rng);
    Rng crng(3);
    ckt::QuantumCircuit circuit = ckt::qaoaMaxCut(6, 1, crng);

    core::CompileOptions opt; // Pert + ZZXSched
    core::CompiledProgram prog =
        core::compileForDevice(circuit, device, opt);

    const std::string path =
        argc > 1 ? argv[1] : "qzz_schedule.json";
    std::ofstream out(path);
    if (!out) {
        std::cerr << "cannot open " << path << "\n";
        return 1;
    }
    core::ScheduleIoOptions io;
    io.sample_dt = 0.5; // 2 GS/s sampling
    core::writeScheduleJson(prog.schedule, *prog.library, out, io);

    std::cout << "wrote " << path << ": "
              << prog.schedule.physicalLayerCount()
              << " physical layers, "
              << prog.schedule.executionTime() << " ns, pulses from '"
              << prog.library->name() << "'\n";
    return 0;
}
