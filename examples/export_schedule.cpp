/**
 * @file
 * Example: compile a circuit and export the full schedule — layers,
 * cuts, supplemented identities and sampled pulse waveforms — as JSON
 * for a control-electronics backend or a plotting notebook.
 *
 * Usage: export_schedule [output.json] [pulse_method] [sched_policy]
 *        (defaults: qzz_schedule.json, Pert, ZZXSched)
 */

#include <fstream>
#include <iostream>

#include "qzz.h"

int
main(int argc, char **argv)
{
    using namespace qzz;

    const std::string path =
        argc > 1 ? argv[1] : "qzz_schedule.json";
    // The configuration round-trips through the same names the JSON
    // document carries (pulseMethodName / schedPolicyName).
    core::CompileOptions opt; // Pert + ZZXSched
    if (argc > 2) {
        auto method = core::pulseMethodFromName(argv[2]);
        if (!method) {
            std::cerr << "unknown pulse method '" << argv[2]
                      << "' (try Gaussian, OptCtrl, Pert, DCG)\n";
            return 1;
        }
        opt.pulse = *method;
    }
    if (argc > 3) {
        auto policy = core::schedPolicyFromName(argv[3]);
        if (!policy) {
            std::cerr << "unknown scheduling policy '" << argv[3]
                      << "' (try ParSched, ZZXSched)\n";
            return 1;
        }
        opt.sched = *policy;
    }

    Rng rng(21);
    dev::Device device(graph::gridTopology(2, 3), dev::DeviceParams{},
                       rng);
    Rng crng(3);
    ckt::QuantumCircuit circuit = ckt::qaoaMaxCut(6, 1, crng);

    core::Compiler compiler =
        core::CompilerBuilder(device).options(opt).build();
    core::CompileResult result = compiler.compile(circuit);
    if (!result.ok()) {
        std::cerr << "compile failed in pass '" << result.status.pass
                  << "': " << result.status.message << "\n";
        return 1;
    }

    std::ofstream out(path);
    if (!out) {
        std::cerr << "cannot open " << path << "\n";
        return 1;
    }
    core::ScheduleIoOptions io;
    io.sample_dt = 0.5; // 2 GS/s sampling
    core::writeCompiledProgramJson(result.program, out, io);

    const core::CompiledProgram &prog = result.program;
    std::cout << "wrote " << path << ": "
              << prog.schedule.physicalLayerCount()
              << " physical layers, "
              << prog.schedule.executionTime() << " ns, pulses from '"
              << prog.library->name() << "'\n";
    for (const core::StageDiagnostics &stage :
         result.diagnostics.stages)
        std::cout << "  " << stage.stage << ": "
                  << formatF(stage.wall_ms, 2) << " ms\n";
    return 0;
}
