/**
 * @file
 * Domain example: QAOA MaxCut on a 6-qubit grid device.
 *
 * Walks the full co-optimization stack explicitly (route -> lower ->
 * schedule -> pulses -> simulate) instead of using the one-shot
 * pipeline, to show what each stage produces.
 */

#include <iostream>

#include "qzz.h"

int
main()
{
    using namespace qzz;

    Rng rng(7);
    dev::Device device(graph::gridTopology(2, 3), dev::DeviceParams{},
                       rng);
    Rng circuit_rng(2);
    ckt::QuantumCircuit qaoa = ckt::qaoaMaxCut(6, 1, circuit_rng);
    std::cout << "QAOA-6 logical circuit: " << qaoa.size()
              << " gates, " << qaoa.twoQubitCount()
              << " two-qubit gates\n";

    // Stage 1: routing.
    ckt::RoutedCircuit routed = ckt::routeCircuit(qaoa, device.graph());
    std::cout << "Routing inserted " << routed.swaps_inserted
              << " SWAP gates\n";

    // Stage 2: native lowering.
    ckt::QuantumCircuit native = ckt::decomposeToNative(routed.circuit);
    std::cout << "Native circuit: " << native.size() << " gates ("
              << native.twoQubitCount() << " Rzx)\n\n";

    // Stage 3+4: schedule and attach pulse libraries, then simulate.
    // Each configuration is a Compiler running the same pass pipeline
    // the stages above walked by hand.
    Table table({"configuration", "layers", "exec (ns)", "mean NC",
                 "max NQ", "fidelity"});
    for (auto [pulse, sched] :
         {std::pair{core::PulseMethod::Gaussian, core::SchedPolicy::Par},
          {core::PulseMethod::Gaussian, core::SchedPolicy::Zzx},
          {core::PulseMethod::Pert, core::SchedPolicy::Par},
          {core::PulseMethod::Pert, core::SchedPolicy::Zzx}}) {
        core::Compiler compiler = core::CompilerBuilder(device)
                                      .pulseMethod(pulse)
                                      .schedPolicy(sched)
                                      .build();
        exp::FidelityResult res =
            exp::evaluateFidelity(qaoa, compiler);
        table.addRow({exp::configName(compiler.options()),
                      std::to_string(res.physical_layers),
                      formatF(res.execution_time, 0),
                      formatF(res.mean_nc, 2),
                      std::to_string(res.max_nq),
                      formatF(res.fidelity, 4)});
    }
    table.setTitle("QAOA-6: pulse/scheduling ablation (Fig. 21 shape)");
    table.print(std::cout);
    return 0;
}
