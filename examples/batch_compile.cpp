/**
 * @file
 * Example: compile a whole workload of circuits concurrently with
 * Compiler::compileBatch().  One Compiler is built per device; its
 * routing tables, suppression solver and pulse library are shared by
 * every worker thread, so batch throughput scales with cores while
 * the output stays identical to sequential compilation.
 *
 * Usage: batch_compile [num_threads]   (default: hardware threads)
 */

#include <cstdlib>
#include <iostream>

#include "qzz.h"

int
main(int argc, char **argv)
{
    using namespace qzz;

    Rng rng(11);
    dev::Device device(graph::gridTopology(3, 4), dev::DeviceParams{},
                       rng);

    // A mixed 12-qubit workload: QFT, QAOA, hidden shift, GRC.
    std::vector<ckt::QuantumCircuit> workload;
    workload.push_back(ckt::qft(12));
    for (uint64_t seed = 1; seed <= 3; ++seed) {
        Rng crng(seed);
        workload.push_back(ckt::qaoaMaxCut(12, 1, crng));
    }
    for (uint64_t seed = 4; seed <= 6; ++seed) {
        Rng crng(seed);
        workload.push_back(ckt::hiddenShift(12, crng));
    }
    Rng grc_rng(7);
    workload.push_back(ckt::googleRandom(12, 6, grc_rng));

    core::Compiler compiler = core::CompilerBuilder(device)
                                  .pulseMethod(core::PulseMethod::Pert)
                                  .schedPolicy(core::SchedPolicy::Zzx)
                                  .build();

    core::BatchOptions batch_opt;
    if (argc > 1)
        batch_opt.num_threads = std::atoi(argv[1]);
    core::BatchResult batch =
        compiler.compileBatch(workload, batch_opt);
    if (!batch.allOk()) {
        for (const core::CompileResult &r : batch.results)
            if (!r.ok())
                std::cerr << "compile failed: " << r.status.message
                          << "\n";
        return 1;
    }

    Table table({"circuit", "layers", "exec (ns)", "mean NC",
                 "compile (ms)"});
    for (size_t i = 0; i < batch.results.size(); ++i) {
        const core::CompileResult &r = batch.results[i];
        table.addRow({workload[i].name(),
                      std::to_string(r.diagnostics.physical_layers),
                      formatF(r.diagnostics.execution_time_ns, 0),
                      formatF(r.diagnostics.mean_nc, 2),
                      formatF(r.diagnostics.total_ms, 1)});
    }
    table.setTitle("Pert+ZZXSched batch over " +
                   std::to_string(batch.threads_used) + " threads");
    table.print(std::cout);

    double serial_ms = 0.0;
    for (const core::CompileResult &r : batch.results)
        serial_ms += r.diagnostics.total_ms;
    std::cout << "\nbatch wall time " << formatF(batch.wall_ms, 1)
              << " ms for " << formatF(serial_ms, 1)
              << " ms of compilation ("
              << formatF(serial_ms / std::max(batch.wall_ms, 1e-9), 1)
              << "x speedup on " << batch.threads_used
              << " threads)\n";
    return 0;
}
