/**
 * @file
 * compile_server: a JSON-lines compilation daemon over
 * svc::CompileService.
 *
 * Reads one request object per stdin line, compiles asynchronously on
 * the service's worker pool (with fingerprint-keyed program caching),
 * and streams one response object per line to stdout *in request
 * order*.  A dedicated writer thread emits each response the moment
 * its turn completes, so an interactive client doing strict
 * request -> response alternation never deadlocks, while a batch
 * piped in at once still compiles in parallel behind the reader.
 *
 * Request fields (flat JSON object; see --help for the full list):
 *   {"benchmark":"QFT","qubits":6,"seed":3,
 *    "topology":"grid","rows":2,"cols":3,
 *    "pulse":"Pert","sched":"ZZXSched",
 *    "priority":1,"deadline_ms":5000,"use_cache":true,"id":"job-1"}
 * Control records: {"cmd":"metrics"} | {"cmd":"quit"}.
 *
 * Successful responses embed the full schedule document produced by
 * core::writeCompiledProgramJson() under "program".
 */

#include <condition_variable>
#include <deque>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>

#include "qzz.h"

using namespace qzz;

namespace {

struct ServerConfig
{
    int workers = 0;
    size_t cache_capacity = 256;
    std::string artifact_dir;
    double sample_dt = 0.0;
};

void
printUsage(std::ostream &os)
{
    os << "Usage: compile_server [options]\n"
          "\n"
          "JSON-lines compilation daemon: one request object per stdin\n"
          "line, one response object per stdout line, in request order.\n"
          "\n"
          "Options:\n"
          "  --workers N         worker threads (default: all cores)\n"
          "  --cache-capacity N  program-cache entries (default: 256)\n"
          "  --artifact-dir DIR  persist compiled programs as artifacts\n"
          "  --sample-dt DT      waveform sample spacing (ns) in the\n"
          "                      schedule JSON; 0 omits samples (default)\n"
          "  --help              this text\n"
          "\n"
          "Request fields:\n"
          "  benchmark   family: "
       << joinNames(ckt::benchmarkFamilyNames())
       << "\n"
          "  qubits      circuit size (HS even, QAOA >= 3, ...)\n"
          "  seed        RNG seed for the random families (default 1)\n"
          "  topology    grid | line | ring | heavyhex | trigrid\n"
          "              (default: grid sized for the circuit)\n"
          "  rows, cols  grid / trigrid / heavyhex dimensions\n"
          "  size        line / ring length\n"
          "  device_seed coupling-sampling seed (default 7)\n"
          "  calib_epoch calibration-snapshot epoch: the base\n"
          "              snapshot drifted N times (default 0); each\n"
          "              epoch fingerprints — and caches — separately\n"
          "  pulse       " << joinNames(core::pulseMethodNames())
       << "\n"
          "  sched       " << joinNames(core::schedPolicyNames())
       << "\n"
          "  priority    higher first (default 0)\n"
          "  deadline_ms fail if still queued past this (optional)\n"
          "  use_cache   default true\n"
          "  id          echoed back verbatim (optional)\n"
          "\n"
          "Control records: {\"cmd\":\"metrics\"} {\"cmd\":\"quit\"}\n";
}

/** A submitted request waiting for its response slot. */
struct Pending
{
    std::string id;
    std::string label;
    svc::RequestHandle handle;
};

/** One queued stdout line: a pending response or an inline error. */
struct OutItem
{
    bool is_error = false;
    Pending pending;     ///< valid when !is_error
    std::string id;      ///< valid when is_error
    std::string message; ///< valid when is_error
};

class Server
{
  public:
    explicit Server(const ServerConfig &config) : config_(config)
    {
        svc::CompileServiceConfig sc;
        sc.num_workers = config.workers;
        sc.cache.capacity = config.cache_capacity;
        sc.cache.artifact_dir = config.artifact_dir;
        service_ = std::make_unique<svc::CompileService>(sc);
        writer_ = std::thread([this] { writerLoop(); });
    }

    ~Server() { stopWriter(); }

    int
    run()
    {
        std::string line;
        uint64_t lineno = 0;
        while (std::getline(std::cin, line)) {
            ++lineno;
            if (line.find_first_not_of(" \t\r") == std::string::npos)
                continue;
            std::string error;
            const auto obj = svc::JsonObject::parse(line, &error);
            if (!obj) {
                enqueueError(std::to_string(lineno),
                             "parse error: " + error);
                continue;
            }
            if (const auto cmd = obj->getString("cmd")) {
                // Control records are synchronization points: settle
                // every earlier response before acting.
                waitForWriterIdle();
                if (*cmd == "quit")
                    break;
                if (*cmd == "metrics")
                    respondMetrics();
                else
                    enqueueError(requestId(*obj, lineno),
                                 "unknown cmd '" + *cmd + "'");
                continue;
            }
            handleRequest(*obj, lineno);
        }
        stopWriter();
        service_->shutdown(true);
        return 0;
    }

  private:
    static std::string
    requestId(const svc::JsonObject &obj, uint64_t lineno)
    {
        if (const auto id = obj.getString("id"))
            return *id;
        return std::to_string(lineno);
    }

    void
    handleRequest(const svc::JsonObject &obj, uint64_t lineno)
    {
        const std::string id = requestId(obj, lineno);

        const auto family = obj.getString("benchmark");
        if (!family) {
            enqueueError(id, "missing 'benchmark' (one of: " +
                                 joinNames(ckt::benchmarkFamilyNames()) +
                                 ")");
            return;
        }
        // Bounded before the int64 -> int narrowing: a huge value
        // must produce an error line, not a wrapped register size or
        // a generator allocation failure.
        constexpr int64_t kMaxQubits = 256;
        const auto qubits = obj.getInt("qubits");
        if (!qubits || *qubits < 2 || *qubits > kMaxQubits) {
            enqueueError(id, "missing or bad 'qubits' (integer in [2, " +
                                 std::to_string(kMaxQubits) + "])");
            return;
        }
        const uint64_t seed = uint64_t(obj.getInt("seed").value_or(1));

        svc::CompileRequest request;
        try {
            auto circuit =
                ckt::namedBenchmark(*family, int(*qubits), seed);
            if (!circuit) {
                enqueueError(id, "unknown benchmark '" + *family +
                                     "' (one of: " +
                                     joinNames(
                                         ckt::benchmarkFamilyNames()) +
                                     ")");
                return;
            }
            request.circuit = std::move(*circuit);
            request.device = deviceFor(obj, int(*qubits));
        } catch (const std::exception &e) {
            // UserError for bad parameters, plus anything a generator
            // or topology builder throws on extreme inputs: one error
            // line, never a dead daemon.
            enqueueError(id, e.what());
            return;
        }

        if (const auto pulse = obj.getString("pulse")) {
            const auto method = core::pulseMethodFromName(*pulse);
            if (!method) {
                enqueueError(id, "unknown pulse method '" + *pulse +
                                     "' (one of: " +
                                     joinNames(core::pulseMethodNames()) +
                                     ")");
                return;
            }
            request.options.pulse = *method;
        }
        if (const auto sched = obj.getString("sched")) {
            const auto policy = core::schedPolicyFromName(*sched);
            if (!policy) {
                enqueueError(id, "unknown scheduling policy '" + *sched +
                                     "' (one of: " +
                                     joinNames(core::schedPolicyNames()) +
                                     ")");
                return;
            }
            request.options.sched = *policy;
        }
        request.request.priority =
            int(obj.getInt("priority").value_or(0));
        request.request.seed = seed;
        request.request.use_cache = obj.getBool("use_cache").value_or(true);
        if (const auto deadline = obj.getNumber("deadline_ms"))
            request.request.deadline = std::chrono::milliseconds(
                int64_t(std::max(0.0, *deadline)));

        Pending pending;
        pending.id = id;
        pending.label = request.circuit.name();
        pending.handle = service_->submit(std::move(request));
        OutItem item;
        item.pending = std::move(pending);
        enqueue(std::move(item));
    }

    /** Device construction + memo, shared across requests. */
    std::shared_ptr<const dev::Device>
    deviceFor(const svc::JsonObject &obj, int circuit_qubits)
    {
        const std::string kind =
            obj.getString("topology").value_or("grid");
        const uint64_t device_seed =
            uint64_t(obj.getInt("device_seed").value_or(7));
        constexpr int64_t kMaxEpoch = 4096;
        const int64_t calib_epoch =
            obj.getInt("calib_epoch").value_or(0);
        if (calib_epoch < 0 || calib_epoch > kMaxEpoch)
            fatal("bad 'calib_epoch' (integer in [0, " +
                  std::to_string(kMaxEpoch) + "])");

        graph::Topology topo;
        if (kind == "grid" || kind == "trigrid") {
            auto [r, c] = dev::Device::gridDimsForQubits(circuit_qubits);
            const int rows = int(obj.getInt("rows").value_or(r));
            const int cols = int(obj.getInt("cols").value_or(c));
            topo = kind == "grid"
                       ? graph::gridTopology(rows, cols)
                       : graph::triangulatedGridTopology(rows, cols);
        } else if (kind == "heavyhex") {
            const int rows = int(obj.getInt("rows").value_or(1));
            const int cols = int(obj.getInt("cols").value_or(1));
            topo = graph::heavyHexTopology(rows, cols);
        } else if (kind == "line") {
            topo = graph::lineTopology(
                int(obj.getInt("size").value_or(circuit_qubits)));
        } else if (kind == "ring") {
            topo = graph::ringTopology(
                int(obj.getInt("size").value_or(circuit_qubits)));
        } else {
            fatal("unknown topology '" + kind +
                  "' (one of: grid, line, ring, heavyhex, trigrid)");
        }

        const std::string key = topo.name + "#" +
                                std::to_string(device_seed) + "@" +
                                std::to_string(calib_epoch);
        auto it = devices_.find(key);
        if (it != devices_.end())
            return it->second;
        // Epoch e = the base snapshot recalibrated e times, each
        // drift step deterministically seeded, so every client asking
        // for (topology, device_seed, epoch) sees the same device —
        // and the same fingerprint.
        Rng rng(device_seed);
        dev::Calibration calib =
            dev::Calibration::sampled(topo, dev::DeviceParams{}, rng);
        for (int64_t e = 0; e < calib_epoch; ++e) {
            Rng drift_rng(device_seed ^ (uint64_t(e) + 1));
            calib = calib.drifted({}, drift_rng);
        }
        auto device = std::make_shared<const dev::Device>(
            std::move(topo), std::move(calib));
        devices_.emplace(key, device);
        return device;
    }

    // ------------------------------------------------------------------
    // Ordered output: a writer thread blocks on each queued item in
    // turn, so responses stream out the moment their turn completes
    // while the reader keeps accepting requests.
    // ------------------------------------------------------------------

    void
    writerLoop()
    {
        for (;;) {
            OutItem item;
            {
                std::unique_lock<std::mutex> lock(out_mu_);
                out_cv_.wait(lock, [this] {
                    return out_done_ || !out_.empty();
                });
                if (out_.empty()) {
                    if (out_done_)
                        return;
                    continue;
                }
                item = std::move(out_.front());
                out_.pop_front();
                writer_busy_ = true;
            }
            if (item.is_error)
                printError(item.id, item.message);
            else
                respond(item.pending, item.pending.handle.get());
            {
                std::lock_guard<std::mutex> lock(out_mu_);
                writer_busy_ = false;
                if (out_.empty())
                    idle_cv_.notify_all();
            }
        }
    }

    void
    enqueue(OutItem item)
    {
        {
            std::lock_guard<std::mutex> lock(out_mu_);
            out_.push_back(std::move(item));
        }
        out_cv_.notify_one();
    }

    void
    enqueueError(const std::string &id, const std::string &message)
    {
        OutItem item;
        item.is_error = true;
        item.id = id;
        item.message = message;
        enqueue(std::move(item));
    }

    /** Block until every queued response has been written. */
    void
    waitForWriterIdle()
    {
        std::unique_lock<std::mutex> lock(out_mu_);
        idle_cv_.wait(lock, [this] {
            return out_.empty() && !writer_busy_;
        });
    }

    void
    stopWriter()
    {
        {
            std::lock_guard<std::mutex> lock(out_mu_);
            if (out_done_ && !writer_.joinable())
                return;
            out_done_ = true;
        }
        out_cv_.notify_all();
        if (writer_.joinable())
            writer_.join();
    }

    void
    respond(const Pending &pending, const svc::ServiceResult &result)
    {
        std::ostringstream os;
        os.precision(12);
        os << "{\"id\":\"" << svc::jsonEscape(pending.id)
           << "\",\"ok\":" << (result.ok() ? "true" : "false")
           << ",\"outcome\":\"" << svc::outcomeName(result.outcome)
           << "\",\"benchmark\":\"" << svc::jsonEscape(pending.label)
           << "\",\"fingerprint\":\"" << result.fingerprint.hex()
           << "\",\"cache_hit\":"
           << (result.outcome == svc::Outcome::CacheHit ? "true"
                                                        : "false")
           << ",\"queue_ms\":" << result.queue_ms
           << ",\"compile_ms\":" << result.compile_ms;
        if (result.ok()) {
            std::ostringstream program;
            core::ScheduleIoOptions io;
            io.pretty = false;
            io.sample_dt = config_.sample_dt;
            core::writeCompiledProgramJson(*result.program, program, io);
            std::string doc = program.str();
            while (!doc.empty() && doc.back() == '\n')
                doc.pop_back();
            os << ",\"program\":" << doc;
        } else if (!result.status.message.empty()) {
            os << ",\"error\":\""
               << svc::jsonEscape(result.status.message) << "\"";
        }
        os << "}";
        std::cout << os.str() << "\n" << std::flush;
    }

    void
    printError(const std::string &id, const std::string &message)
    {
        std::cout << "{\"id\":\"" << svc::jsonEscape(id)
                  << "\",\"ok\":false,\"error\":\""
                  << svc::jsonEscape(message) << "\"}\n"
                  << std::flush;
    }

    void
    respondMetrics()
    {
        const svc::MetricsSnapshot m = service_->metrics();
        std::ostringstream os;
        os.precision(12);
        os << "{\"metrics\":true,\"submitted\":" << m.submitted
           << ",\"completed\":" << m.completed
           << ",\"failed\":" << m.failed
           << ",\"cancelled\":" << m.cancelled
           << ",\"expired\":" << m.expired
           << ",\"rejected\":" << m.rejected
           << ",\"cache_hits\":" << m.cache_hits
           << ",\"cache_misses\":" << m.cache_misses
           << ",\"coalesced\":" << m.coalesced
           << ",\"cache_hit_rate\":" << m.cache_hit_rate
           << ",\"queue_depth\":" << m.queue_depth
           << ",\"workers\":" << m.workers
           << ",\"throughput_per_s\":" << m.throughput_per_s
           << ",\"latency_p50_ms\":" << m.latency_p50_ms
           << ",\"latency_p95_ms\":" << m.latency_p95_ms
           << ",\"latency_p99_ms\":" << m.latency_p99_ms << "}";
        std::cout << os.str() << "\n" << std::flush;
    }

    ServerConfig config_;
    std::unique_ptr<svc::CompileService> service_;
    std::unordered_map<std::string, std::shared_ptr<const dev::Device>>
        devices_;

    std::mutex out_mu_;
    std::condition_variable out_cv_;
    std::condition_variable idle_cv_;
    std::deque<OutItem> out_;
    bool out_done_ = false;
    bool writer_busy_ = false;
    std::thread writer_;
};

} // namespace

int
main(int argc, char **argv)
{
    ServerConfig config;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char *what) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "compile_server: " << arg << " needs "
                          << what << "\n";
                std::exit(1);
            }
            return argv[++i];
        };
        // std::sto* throw on malformed input; turn that into the
        // same clean one-line error every other bad argument gets.
        auto numeric = [&](const char *what, auto parse) {
            const std::string value = next(what);
            try {
                return parse(value);
            } catch (const std::exception &) {
                std::cerr << "compile_server: " << arg << " needs "
                          << what << ", got '" << value << "'\n";
                std::exit(1);
            }
        };
        if (arg == "--help" || arg == "-h") {
            printUsage(std::cout);
            return 0;
        } else if (arg == "--workers") {
            config.workers = numeric(
                "a thread count",
                [](const std::string &v) { return std::stoi(v); });
        } else if (arg == "--cache-capacity") {
            config.cache_capacity =
                numeric("an entry count", [](const std::string &v) {
                    return size_t(std::stoul(v));
                });
        } else if (arg == "--artifact-dir") {
            config.artifact_dir = next("a directory");
        } else if (arg == "--sample-dt") {
            config.sample_dt = numeric(
                "a spacing in ns",
                [](const std::string &v) { return std::stod(v); });
        } else {
            std::cerr << "compile_server: unknown option '" << arg
                      << "' (see --help)\n";
            return 1;
        }
    }
    try {
        return Server(config).run();
    } catch (const std::exception &e) {
        std::cerr << "compile_server: " << e.what() << "\n";
        return 1;
    }
}
