/**
 * @file
 * compile_server: the JSON-lines compilation daemon.
 *
 * All serving logic lives in the library (svc::Server / svc::Session,
 * src/service/server.h); this binary is flag parsing plus transport
 * selection.  Without --listen it speaks the classic stdio protocol
 * (one request per stdin line, one response per stdout line, in
 * request order); with --listen it serves the same protocol over a
 * TCP or Unix-domain socket, one session per connection.  The wire
 * protocol is specified in docs/protocol.md.
 */

#include <iostream>
#include <memory>
#include <string>

#include "qzz.h"

using namespace qzz;

namespace {

void
printUsage(std::ostream &os)
{
    os << "Usage: compile_server [options]\n"
          "\n"
          "JSON-lines compilation daemon: one request object per line,\n"
          "one response object per line, in request order (per\n"
          "connection).  See docs/protocol.md for the full protocol.\n"
          "\n"
          "Options:\n"
          "  --workers N           worker threads (default: all cores)\n"
          "  --cache-capacity N    program-cache entries (default: 256)\n"
          "  --artifact-dir DIR    persist compiled programs as artifacts\n"
          "  --sample-dt DT        waveform sample spacing (ns) in the\n"
          "                        schedule JSON; 0 omits samples (default)\n"
          "  --listen SPEC         serve tcp:[HOST:]PORT or unix:PATH\n"
          "                        instead of stdin/stdout\n"
          "  --idle-timeout-ms N   drop a socket session idle this long\n"
          "  --max-line-bytes N    socket request-line bound (default 1MiB)\n"
          "  --gc-capacity-bytes N artifact-dir byte bound (GC-enforced)\n"
          "  --gc-max-age-ms N     evict artifacts older than this\n"
          "  --gc-keep-epochs N    keep only the newest N calib epochs\n"
          "                        (disk GC and in-memory cache sweep)\n"
          "  --gc-interval-ms N    background GC pass interval\n"
          "  --watch-calib DIR     poll DIR for <topology>@<seed>.qzzcalib\n"
          "                        snapshot files and roll the live\n"
          "                        calibration epoch on each new file\n"
          "  --watch-interval-ms N calibration watch poll period\n"
          "                        (default 250)\n"
          "  --metrics-listen SPEC serve GET /metrics (Prometheus text\n"
          "                        format) on tcp:[HOST:]PORT; tcp:0\n"
          "                        picks a free port (printed to stderr)\n"
          "  --trace-log FILE      append one JSON span per line per\n"
          "                        request stage (docs/observability.md)\n"
          "  --trace-max-bytes N   rotate the trace log to FILE.1 before\n"
          "                        exceeding N bytes (default 64MiB)\n"
          "  --slow-ms N           log a one-line summary of requests\n"
          "                        slower than N ms to stderr\n"
          "  --help                this text\n"
          "\n"
          "Request fields:\n"
          "  benchmark   family: "
       << joinNames(ckt::benchmarkFamilyNames())
       << "\n"
          "  qubits      circuit size (HS even, QAOA >= 3, ...)\n"
          "  seed        RNG seed for the random families (default 1)\n"
          "  topology    grid | line | ring | heavyhex | trigrid\n"
          "              (default: grid sized for the circuit)\n"
          "  rows, cols  grid / trigrid / heavyhex dimensions\n"
          "  size        line / ring length\n"
          "  device_seed coupling-sampling seed (default 7)\n"
          "  calib_epoch calibration-snapshot epoch: the base\n"
          "              snapshot drifted N times (default 0); each\n"
          "              epoch fingerprints — and caches — separately\n"
          "  pulse       " << joinNames(core::pulseMethodNames())
       << "\n"
          "  sched       " << joinNames(core::schedPolicyNames())
       << "\n"
          "  priority    higher first (default 0)\n"
          "  deadline_ms fail if still queued past this (optional)\n"
          "  use_cache   default true\n"
          "  id          echoed back verbatim (optional)\n"
          "\n"
          "Control records: {\"cmd\":\"hello\"} {\"cmd\":\"metrics\"} "
          "{\"cmd\":\"gc\"} {\"cmd\":\"calibrate\"} {\"cmd\":\"quit\"}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    svc::ServerConfig config;
    svc::SocketTransportConfig socket_config;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char *what) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "compile_server: " << arg << " needs "
                          << what << "\n";
                std::exit(1);
            }
            return argv[++i];
        };
        // std::sto* throw on malformed input; turn that into the
        // same clean one-line error every other bad argument gets.
        auto numeric = [&](const char *what, auto parse) {
            const std::string value = next(what);
            try {
                return parse(value);
            } catch (const std::exception &) {
                std::cerr << "compile_server: " << arg << " needs "
                          << what << ", got '" << value << "'\n";
                std::exit(1);
            }
        };
        auto stoll = [](const std::string &v) { return std::stoll(v); };
        if (arg == "--help" || arg == "-h") {
            printUsage(std::cout);
            return 0;
        } else if (arg == "--workers") {
            config.workers = numeric(
                "a thread count",
                [](const std::string &v) { return std::stoi(v); });
        } else if (arg == "--cache-capacity") {
            config.cache_capacity =
                numeric("an entry count", [](const std::string &v) {
                    return size_t(std::stoul(v));
                });
        } else if (arg == "--artifact-dir") {
            config.artifact_dir = next("a directory");
        } else if (arg == "--sample-dt") {
            config.sample_dt = numeric(
                "a spacing in ns",
                [](const std::string &v) { return std::stod(v); });
        } else if (arg == "--listen") {
            socket_config.listen = next("tcp:[HOST:]PORT or unix:PATH");
        } else if (arg == "--idle-timeout-ms") {
            socket_config.idle_timeout =
                std::chrono::milliseconds(numeric("a duration", stoll));
        } else if (arg == "--max-line-bytes") {
            socket_config.max_line_bytes =
                numeric("a byte count", [](const std::string &v) {
                    return size_t(std::stoull(v));
                });
        } else if (arg == "--gc-capacity-bytes") {
            config.gc_capacity_bytes =
                numeric("a byte count", [](const std::string &v) {
                    return uint64_t(std::stoull(v));
                });
        } else if (arg == "--gc-max-age-ms") {
            config.gc_max_age =
                std::chrono::milliseconds(numeric("a duration", stoll));
        } else if (arg == "--gc-keep-epochs") {
            config.gc_keep_epochs = numeric(
                "an epoch count",
                [](const std::string &v) { return std::stoi(v); });
        } else if (arg == "--gc-interval-ms") {
            config.gc_interval =
                std::chrono::milliseconds(numeric("a duration", stoll));
        } else if (arg == "--watch-calib") {
            config.watch_calib_dir = next("a directory");
        } else if (arg == "--watch-interval-ms") {
            config.watch_calib_interval =
                std::chrono::milliseconds(numeric("a duration", stoll));
        } else if (arg == "--metrics-listen") {
            config.metrics_listen = next("tcp:[HOST:]PORT");
        } else if (arg == "--trace-log") {
            config.trace_log = next("a file path");
        } else if (arg == "--trace-max-bytes") {
            config.trace_max_bytes =
                numeric("a byte count", [](const std::string &v) {
                    return uint64_t(std::stoull(v));
                });
        } else if (arg == "--slow-ms") {
            config.slow_ms = numeric(
                "a duration in ms",
                [](const std::string &v) { return std::stod(v); });
        } else {
            std::cerr << "compile_server: unknown option '" << arg
                      << "' (see --help)\n";
            return 1;
        }
    }
    try {
        svc::Server server(config);
        if (!config.metrics_listen.empty())
            std::cerr << "compile_server: metrics on tcp:"
                      << server.metricsPort() << "\n";
        std::unique_ptr<svc::Transport> transport;
        if (socket_config.listen.empty()) {
            transport = std::make_unique<svc::StdioTransport>();
        } else {
            transport = std::make_unique<svc::SocketTransport>(
                std::move(socket_config));
            // stderr so scripted clients parsing stdout never see it;
            // tcp:0 callers learn the kernel-picked port from here.
            std::cerr << "compile_server: listening on "
                      << transport->name() << "\n";
        }
        return server.serve(*transport);
    } catch (const std::exception &e) {
        std::cerr << "compile_server: " << e.what() << "\n";
        return 1;
    }
}
